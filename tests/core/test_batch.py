"""Tests for batch search execution."""

import numpy as np
import pytest

from repro.core.batch import run_batch
from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.exceptions import ConfigurationError
from repro.interaction.oracle import OracleUser
from repro.interaction.scripted import CallbackUser
from repro.interaction.base import UserDecision

FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


class TestRunBatch:
    def test_basic_batch(self, small_clustered):
        ds = small_clustered.dataset
        queries = np.concatenate(
            [ds.cluster_indices(0)[:2], ds.cluster_indices(1)[:1]]
        )
        search = InteractiveNNSearch(ds, FAST)
        batch = run_batch(search, queries, lambda qi: OracleUser(ds, qi))
        assert batch.query_count == 3
        assert batch.meaningful_count >= 2
        assert 0.0 <= batch.meaningful_fraction <= 1.0
        assert batch.mean_natural_size > 0
        assert 0.0 < batch.mean_acceptance_rate <= 1.0

    def test_entries_in_input_order(self, small_clustered):
        ds = small_clustered.dataset
        queries = ds.cluster_indices(0)[:3]
        search = InteractiveNNSearch(ds, FAST)
        batch = run_batch(search, queries, lambda qi: OracleUser(ds, qi))
        assert [e.query_index for e in batch.entries] == queries.tolist()

    def test_neighbors_of(self, small_clustered):
        ds = small_clustered.dataset
        queries = ds.cluster_indices(0)[:2]
        search = InteractiveNNSearch(ds, FAST)
        batch = run_batch(search, queries, lambda qi: OracleUser(ds, qi))
        nn = batch.neighbors_of(int(queries[0]))
        assert nn.size > 0
        with pytest.raises(ConfigurationError):
            batch.neighbors_of(999_999)

    def test_empty_queries(self, small_clustered):
        search = InteractiveNNSearch(small_clustered.dataset, FAST)
        with pytest.raises(ConfigurationError):
            run_batch(search, np.array([], dtype=int), lambda qi: None)

    def test_out_of_range_query(self, small_clustered):
        search = InteractiveNNSearch(small_clustered.dataset, FAST)
        with pytest.raises(ConfigurationError):
            run_batch(search, np.array([10_000]), lambda qi: None)

    def test_reject_all_batch(self, small_clustered):
        ds = small_clustered.dataset
        queries = ds.cluster_indices(0)[:2]
        search = InteractiveNNSearch(ds, FAST)
        batch = run_batch(
            search,
            queries,
            lambda qi: CallbackUser(lambda v: UserDecision.reject(v.n_points)),
        )
        assert batch.meaningful_count == 0
        assert batch.mean_natural_size == 0.0


class TestInterleavedScheduler:
    def test_invalid_max_in_flight(self, small_clustered):
        search = InteractiveNNSearch(small_clustered.dataset, FAST)
        with pytest.raises(ConfigurationError):
            run_batch(
                search, np.array([0]), lambda qi: None, max_in_flight=0
            )

    def test_all_indices_validated_before_any_run(self, small_clustered):
        """A bad index late in the list fails fast, before work starts."""
        ds = small_clustered.dataset
        calls = []

        def factory(qi):
            calls.append(qi)
            return OracleUser(ds, qi)

        search = InteractiveNNSearch(ds, FAST)
        queries = np.array([0, 1, ds.size + 5])
        with pytest.raises(ConfigurationError):
            run_batch(search, queries, factory)
        assert calls == []

    @pytest.mark.parametrize("max_in_flight", [1, 2, 16])
    def test_interleaving_invariant(self, small_clustered, max_in_flight):
        """Per-query outcomes are identical for every interleaving."""
        ds = small_clustered.dataset
        queries = np.concatenate(
            [ds.cluster_indices(0)[:2], ds.cluster_indices(1)[:2]]
        )
        search = InteractiveNNSearch(ds, FAST)
        sequential = run_batch(
            search, queries, lambda qi: OracleUser(ds, qi), max_in_flight=1
        )
        interleaved = run_batch(
            search,
            queries,
            lambda qi: OracleUser(ds, qi),
            max_in_flight=max_in_flight,
        )
        assert [e.query_index for e in interleaved.entries] == queries.tolist()
        for got, expected in zip(interleaved.entries, sequential.entries):
            assert np.array_equal(got.neighbors, expected.neighbors)
            assert np.array_equal(
                got.result.probabilities, expected.result.probabilities
            )
            assert got.result.reason == expected.result.reason

    def test_duplicate_query_indices_supported(self, small_clustered):
        """neighbors_of resolves duplicates to a single (last) entry."""
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        search = InteractiveNNSearch(ds, FAST)
        batch = run_batch(
            search,
            np.array([qi, qi]),
            lambda q: OracleUser(ds, q),
            max_in_flight=2,
        )
        assert batch.query_count == 2
        assert np.array_equal(
            batch.entries[0].neighbors, batch.entries[1].neighbors
        )
        assert np.array_equal(
            batch.neighbors_of(qi), batch.entries[1].neighbors
        )

    def test_entry_of_returns_full_entry(self, small_clustered):
        ds = small_clustered.dataset
        queries = ds.cluster_indices(0)[:2]
        search = InteractiveNNSearch(ds, FAST)
        batch = run_batch(
            search, queries, lambda qi: OracleUser(ds, qi), max_in_flight=2
        )
        entry = batch.entry_of(int(queries[1]))
        assert entry.query_index == int(queries[1])
        with pytest.raises(ConfigurationError):
            batch.entry_of(-1)
