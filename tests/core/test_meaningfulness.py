"""Unit tests for repro.core.meaningfulness (Fig. 8, Eqs. 3-8)."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.meaningfulness import (
    MeaningfulnessAccumulator,
    iteration_statistics,
    meaningfulness_coefficients,
    meaningfulness_probabilities,
)
from repro.exceptions import ConfigurationError


class TestIterationStatistics:
    def test_expected_and_variance_formulas(self):
        picks = np.array([10.0, 20.0, 0.0])
        stats = iteration_statistics(picks, population=100)
        fracs = picks / 100
        assert stats.expected == pytest.approx(fracs.sum())
        assert stats.variance == pytest.approx((fracs * (1 - fracs)).sum())

    def test_weighted(self):
        picks = np.array([10.0, 10.0])
        weights = np.array([2.0, 1.0])
        stats = iteration_statistics(picks, 100, weights=weights)
        assert stats.expected == pytest.approx(0.1 * 2 + 0.1)
        assert stats.variance == pytest.approx(4 * 0.09 + 0.09)

    def test_full_pick_zero_variance(self):
        stats = iteration_statistics(np.array([100.0]), 100)
        assert stats.variance == 0.0
        assert stats.expected == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            iteration_statistics(np.array([1.0]), 0)
        with pytest.raises(ConfigurationError):
            iteration_statistics(np.array([-1.0]), 10)
        with pytest.raises(ConfigurationError):
            iteration_statistics(np.array([11.0]), 10)
        with pytest.raises(ConfigurationError):
            iteration_statistics(np.array([1.0]), 10, weights=np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            iteration_statistics(np.array([1.0]), 10, weights=np.array([0.0]))


class TestCoefficients:
    def test_formula(self):
        picks = np.array([50.0, 50.0])
        stats = iteration_statistics(picks, 100)
        v = np.array([2.0, 1.0, 0.0])
        m = meaningfulness_coefficients(v, stats)
        expected = (v - 1.0) / np.sqrt(0.5)
        assert np.allclose(m, expected)

    def test_zero_variance_gives_zero(self):
        stats = iteration_statistics(np.array([0.0]), 10)
        m = meaningfulness_coefficients(np.array([0.0, 1.0]), stats)
        assert np.allclose(m, 0.0)

    def test_probabilities_formula(self):
        picks = np.array([30.0, 30.0, 30.0, 30.0])
        stats = iteration_statistics(picks, 100)
        v = np.array([4.0])
        p = meaningfulness_probabilities(v, stats)
        m = (4.0 - 1.2) / np.sqrt(4 * 0.3 * 0.7)
        assert p[0] == pytest.approx(max(2 * norm.cdf(m) - 1, 0.0))

    def test_below_expectation_clips_to_zero(self):
        picks = np.array([90.0, 90.0])
        stats = iteration_statistics(picks, 100)
        p = meaningfulness_probabilities(np.array([0.0]), stats)
        assert p[0] == 0.0

    def test_probability_bounds(self):
        rng = np.random.default_rng(0)
        picks = rng.integers(0, 100, size=10).astype(float)
        stats = iteration_statistics(picks, 100)
        v = rng.integers(0, 10, size=50).astype(float)
        p = meaningfulness_probabilities(v, stats)
        assert np.all((p >= 0) & (p <= 1))

    def test_normal_approximation_against_monte_carlo(self):
        """Eq. 6's normal approximation matches simulated Bernoulli sums."""
        rng = np.random.default_rng(1)
        picks = np.full(10, 30.0)
        population = 100
        stats = iteration_statistics(picks, population)
        # Simulate the null: independent picks with prob 0.3 each.
        sims = rng.binomial(1, 0.3, size=(20000, 10)).sum(axis=1)
        # P(count >= 6) under the null vs the normal tail.
        v = np.array([6.0])
        m = meaningfulness_coefficients(v, stats)[0]
        normal_tail = 1 - norm.cdf(m)
        empirical_tail = float(np.mean(sims >= 6))
        assert normal_tail == pytest.approx(empirical_tail, abs=0.03)


class TestAccumulator:
    def test_averaging(self):
        acc = MeaningfulnessAccumulator(4)
        stats = iteration_statistics(np.array([1.0]), 4)
        acc.update(np.arange(4), np.array([1.0, 0.0, 0.0, 0.0]), stats)
        acc.update(np.arange(4), np.array([1.0, 1.0, 0.0, 0.0]), stats)
        avg = acc.averages()
        assert acc.iterations == 2
        assert avg[0] > avg[1] > avg[2]
        assert avg[2] == avg[3] == 0.0

    def test_pruned_points_keep_history(self):
        acc = MeaningfulnessAccumulator(3)
        stats = iteration_statistics(np.array([1.0]), 3)
        acc.update(np.arange(3), np.array([1.0, 0.0, 0.0]), stats)
        # Second iteration only covers points 0 and 1.
        stats2 = iteration_statistics(np.array([1.0]), 2)
        acc.update(np.array([0, 1]), np.array([1.0, 0.0]), stats2)
        avg = acc.averages()
        assert avg[0] > 0
        assert avg[2] == 0.0

    def test_no_iterations(self):
        acc = MeaningfulnessAccumulator(5)
        assert np.allclose(acc.averages(), 0.0)

    def test_top_indices_deterministic_ties(self):
        acc = MeaningfulnessAccumulator(4)
        assert acc.top_indices(2).tolist() == [0, 1]

    def test_misaligned_update(self):
        acc = MeaningfulnessAccumulator(4)
        stats = iteration_statistics(np.array([1.0]), 4)
        with pytest.raises(ConfigurationError):
            acc.update(np.arange(4), np.array([1.0, 0.0]), stats)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            MeaningfulnessAccumulator(0)

    def test_sums_property_returns_copy(self):
        acc = MeaningfulnessAccumulator(2)
        sums = acc.sums
        sums[0] = 99.0
        assert acc.sums[0] == 0.0
