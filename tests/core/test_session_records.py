"""Focused tests for session record details added late in development."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.interaction.oracle import OracleUser
from repro.interaction.scripted import CallbackUser
from repro.interaction.base import UserDecision

FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


class TestSelectedIndices:
    def test_accepted_views_store_original_indices(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        for record in result.session.minor_records:
            assert record.selected_indices.size == record.selected_count
            if record.selected_indices.size:
                assert record.selected_indices.min() >= 0
                assert record.selected_indices.max() < ds.size

    def test_rejected_views_store_empty(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        reject = CallbackUser(lambda v: UserDecision.reject(v.n_points))
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], reject)
        for record in result.session.minor_records:
            assert record.selected_indices.size == 0

    def test_selections_subset_of_live(self, small_clustered):
        """Selected indices always reference points that were live."""
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(1)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        session = result.session
        for major in session.major_records:
            for record in session.minor_records_of(major.index):
                if record.selected_indices.size:
                    assert record.selected_indices.size <= record.live_count

    def test_counts_match_selections(self, small_clustered):
        """The probability mass comes exactly from recorded selections."""
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        ever_selected = set()
        for record in result.session.minor_records:
            ever_selected |= set(record.selected_indices.tolist())
        positive = set(np.flatnonzero(result.probabilities > 0).tolist())
        assert positive <= ever_selected
