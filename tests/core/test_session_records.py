"""Focused tests for session record details added late in development."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.interaction.oracle import OracleUser
from repro.interaction.scripted import CallbackUser
from repro.interaction.base import UserDecision

FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


class TestSelectedIndices:
    def test_accepted_views_store_original_indices(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        for record in result.session.minor_records:
            assert record.selected_indices.size == record.selected_count
            if record.selected_indices.size:
                assert record.selected_indices.min() >= 0
                assert record.selected_indices.max() < ds.size

    def test_rejected_views_store_empty(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        reject = CallbackUser(lambda v: UserDecision.reject(v.n_points))
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], reject)
        for record in result.session.minor_records:
            assert record.selected_indices.size == 0

    def test_selections_subset_of_live(self, small_clustered):
        """Selected indices always reference points that were live."""
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(1)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        session = result.session
        for major in session.major_records:
            for record in session.minor_records_of(major.index):
                if record.selected_indices.size:
                    assert record.selected_indices.size <= record.live_count

    def test_counts_match_selections(self, small_clustered):
        """The probability mass comes exactly from recorded selections."""
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        ever_selected = set()
        for record in result.session.minor_records:
            ever_selected |= set(record.selected_indices.tolist())
        positive = set(np.flatnonzero(result.probabilities > 0).tolist())
        assert positive <= ever_selected


def _minor(major, minor, accepted, selected):
    from repro.core.session import MinorIterationRecord

    return MinorIterationRecord(
        major_index=major,
        minor_index=minor,
        subspace=None,
        profile_statistics=None,
        accepted=accepted,
        threshold=0.5 if accepted else None,
        selected_count=selected,
        live_count=100,
        note="",
        refinement_dims=(8, 4, 2),
    )


def _major(index, before, after, accepted, overlap):
    from repro.core.session import MajorIterationRecord

    return MajorIterationRecord(
        index=index,
        live_count_before=before,
        live_count_after=after,
        pick_counts=(10, 0, 5),
        expected=1.0,
        variance=1.0,
        accepted_views=accepted,
        overlap=overlap,
    )


class TestSummary:
    def test_empty_session(self):
        from repro.core.session import SearchSession

        summary = SearchSession().summary()
        assert summary == {
            "major_iterations": 0,
            "total_views": 0,
            "accepted_views": 0,
            "acceptance_rate": 0.0,
            "pruning_trajectory": [],
            "final_overlap": None,
            "mean_selected_per_view": 0.0,
            "termination_reason": None,
        }

    def test_arithmetic_exact(self):
        from repro.core.session import SearchSession

        session = SearchSession()
        session.record_minor(_minor(0, 0, True, 20))
        session.record_minor(_minor(0, 1, False, 0))
        session.record_minor(_minor(1, 0, True, 10))
        session.record_minor(_minor(1, 1, True, 30))
        session.record_major(_major(0, 100, 80, 1, None), np.zeros(4))
        session.record_major(_major(1, 80, 50, 2, 0.75), np.zeros(4))

        summary = session.summary(reason="converged")
        assert summary["major_iterations"] == 2
        assert summary["total_views"] == 4
        assert summary["accepted_views"] == 3
        assert summary["acceptance_rate"] == pytest.approx(0.75)
        assert summary["pruning_trajectory"] == [100, 80, 50]
        assert summary["final_overlap"] == pytest.approx(0.75)
        assert summary["mean_selected_per_view"] == pytest.approx(20.0)
        assert summary["termination_reason"] == "converged"

    def test_summary_is_json_compatible(self):
        import json

        from repro.core.session import SearchSession

        session = SearchSession()
        session.record_minor(_minor(0, 0, True, 5))
        session.record_major(_major(0, 50, 40, 1, None), np.zeros(2))
        encoded = json.dumps(session.summary(reason="max_iterations"))
        assert "pruning_trajectory" in encoded
