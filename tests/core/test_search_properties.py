"""Property-based tests for the search driver (hypothesis).

These exercise the full interactive loop on small random workloads and
check structural invariants that must hold regardless of the data or
the user's behaviour.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.data.dataset import Dataset
from repro.interaction.base import UserDecision
from repro.interaction.scripted import CallbackUser, FixedThresholdUser

TINY = SearchConfig(
    support=5,
    grid_resolution=15,
    min_major_iterations=1,
    max_major_iterations=2,
    projection_restarts=1,
)


@st.composite
def workloads(draw):
    """Small random datasets with a query index and a threshold policy."""
    seed = draw(st.integers(min_value=0, max_value=100_000))
    n = draw(st.integers(min_value=12, max_value=60))
    d = draw(st.integers(min_value=4, max_value=8))
    rng = np.random.default_rng(seed)
    # Mixture of a blob and noise so some structure may or may not exist.
    blob_frac = draw(st.floats(min_value=0.0, max_value=0.8))
    n_blob = int(blob_frac * n)
    blob = rng.normal(0.4, 0.05, size=(n_blob, d))
    noise = rng.uniform(0, 1, size=(n - n_blob, d))
    points = np.vstack([blob, noise])
    query_index = draw(st.integers(min_value=0, max_value=n - 1))
    return Dataset(points=points), query_index


@given(workloads(), st.floats(min_value=0.01, max_value=5.0))
@settings(max_examples=20, deadline=None)
def test_result_structure_invariants(workload, threshold):
    dataset, query_index = workload
    search = InteractiveNNSearch(dataset, TINY)
    result = search.run(dataset.points[query_index], FixedThresholdUser(threshold))
    # Probabilities are a valid vector over all points.
    assert result.probabilities.shape == (dataset.size,)
    assert np.all(result.probabilities >= 0)
    assert np.all(result.probabilities <= 1 + 1e-9)
    # The neighbor list has the effective support size, unique entries,
    # sorted by probability.
    assert result.neighbor_indices.size == result.support
    assert len(set(result.neighbor_indices.tolist())) == result.support
    probs = result.probabilities[result.neighbor_indices]
    assert np.all(np.diff(probs) <= 1e-12)


@given(workloads())
@settings(max_examples=15, deadline=None)
def test_determinism(workload):
    dataset, query_index = workload
    a = InteractiveNNSearch(dataset, TINY).run(
        dataset.points[query_index], FixedThresholdUser(0.5)
    )
    b = InteractiveNNSearch(dataset, TINY).run(
        dataset.points[query_index], FixedThresholdUser(0.5)
    )
    assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
    assert np.allclose(a.probabilities, b.probabilities)


@given(workloads())
@settings(max_examples=15, deadline=None)
def test_session_bookkeeping_consistent(workload):
    dataset, query_index = workload
    result = InteractiveNNSearch(dataset, TINY).run(
        dataset.points[query_index], FixedThresholdUser(0.5)
    )
    session = result.session
    views_per_major = dataset.dim // 2
    assert session.total_views == len(session.major_records) * views_per_major
    for major in session.major_records:
        assert len(major.pick_counts) == views_per_major
        assert 0 < major.live_count_before <= dataset.size
        assert 0 < major.live_count_after <= major.live_count_before
        assert major.variance >= 0
    # Selected counts in minors match the major pick counts.
    for major in session.major_records:
        minors = session.minor_records_of(major.index)
        assert tuple(m.selected_count for m in minors) == major.pick_counts


@given(workloads(), st.integers(min_value=0, max_value=3))
@settings(max_examples=15, deadline=None)
def test_user_seeing_consistent_views(workload, reject_after):
    """Live indices shown to the user always reference real points."""
    dataset, query_index = workload
    seen: list[np.ndarray] = []

    def spy(view):
        seen.append(view.live_indices)
        assert view.projected_points.shape == (view.live_indices.size, 2)
        assert view.total_points == dataset.size
        if len(seen) > reject_after:
            return UserDecision.reject(view.n_points)
        mask = np.ones(view.n_points, dtype=bool)
        return UserDecision(accepted=True, selected_mask=mask)

    InteractiveNNSearch(dataset, TINY).run(
        dataset.points[query_index], CallbackUser(spy)
    )
    for live in seen:
        assert np.all(live >= 0)
        assert np.all(live < dataset.size)
        assert len(set(live.tolist())) == live.size
