"""Unit and behavioural tests for the InteractiveNNSearch driver (Fig. 2)."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch, TerminationReason
from repro.exceptions import DimensionalityError
from repro.interaction.oracle import OracleUser
from repro.interaction.scripted import AcceptEverythingUser, CallbackUser
from repro.interaction.base import UserDecision


FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=3,
    projection_restarts=2,
)


class TestRunBasics:
    def test_returns_support_neighbors(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        search = InteractiveNNSearch(ds, FAST)
        result = search.run(ds.points[qi], OracleUser(ds, qi))
        assert result.neighbor_indices.size == result.support
        assert result.support == max(15, ds.dim)
        assert result.probabilities.shape == (ds.size,)

    def test_query_dimension_check(self, small_clustered):
        ds = small_clustered.dataset
        search = InteractiveNNSearch(ds, FAST)
        with pytest.raises(DimensionalityError):
            search.run(np.zeros(ds.dim + 1), AcceptEverythingUser())

    def test_probabilities_bounded(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(1)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        assert np.all((result.probabilities >= 0) & (result.probabilities <= 1))

    def test_neighbors_sorted_by_probability(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        probs = result.neighbor_probabilities
        assert np.all(np.diff(probs) <= 1e-12)

    def test_deterministic(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        a = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        b = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
        assert np.allclose(a.probabilities, b.probabilities)

    def test_default_config(self, small_clustered):
        ds = small_clustered.dataset
        search = InteractiveNNSearch(ds)
        assert search.config.support == 20
        assert search.dataset is ds


class TestRetrievalQuality:
    def test_oracle_finds_cluster_members(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        true = set(ds.cluster_indices(0).tolist())
        hits = sum(1 for i in result.neighbor_indices.tolist() if i in true)
        assert hits / result.neighbor_indices.size > 0.8

    def test_high_probability_points_are_members(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(2)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        confident = np.flatnonzero(result.probabilities > 0.8)
        if confident.size:
            members = ds.labels[confident] == ds.label_of(qi)
            assert members.mean() > 0.8


class TestSessionRecords:
    def test_views_per_major_iteration(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        majors = result.session.major_records
        assert len(majors) >= 2
        for record in majors:
            assert len(record.pick_counts) == ds.dim // 2

    def test_minor_records_complete(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        session = result.session
        assert session.total_views == len(session.major_records) * (ds.dim // 2)
        first = session.minor_records[0]
        assert first.live_count == ds.size
        assert first.subspace.dim == 2

    def test_probability_history_snapshots(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        history = result.session.probability_history
        assert len(history) == len(result.session.major_records)
        assert np.allclose(history[-1], result.probabilities)

    def test_pruning_shrinks_live_set(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        first = result.session.major_records[0]
        assert first.live_count_after <= first.live_count_before

    def test_profile_quality_by_minor_index(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        quality = result.session.profile_quality_by_minor_index()
        assert set(quality) == set(range(ds.dim // 2))


class TestEdgeBehaviour:
    def test_all_rejections_keeps_live_set(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        reject_all = CallbackUser(lambda v: UserDecision.reject(v.n_points))
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], reject_all)
        # With no picks ever, nothing is pruned and probabilities are 0.
        assert np.allclose(result.probabilities, 0.0)
        for record in result.session.major_records:
            assert record.live_count_after == record.live_count_before

    def test_accept_everything_yields_no_discrimination(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], AcceptEverythingUser()
        )
        # Everyone picked every time: variance 0, probabilities all 0.
        assert np.allclose(result.probabilities, 0.0)

    def test_no_pruning_config(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        cfg = SearchConfig(
            support=15,
            grid_resolution=30,
            min_major_iterations=2,
            max_major_iterations=2,
            projection_restarts=2,
            remove_unpicked=False,
        )
        result = InteractiveNNSearch(ds, cfg).run(ds.points[qi], OracleUser(ds, qi))
        for record in result.session.major_records:
            assert record.live_count_after == record.live_count_before

    def test_termination_reason_enum(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        assert result.reason in (
            TerminationReason.STABLE,
            TerminationReason.ITERATION_LIMIT,
        )

    def test_axis_parallel_mode(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        cfg = SearchConfig(
            support=15,
            grid_resolution=30,
            min_major_iterations=2,
            max_major_iterations=2,
            projection_restarts=2,
            axis_parallel=True,
        )
        result = InteractiveNNSearch(ds, cfg).run(ds.points[qi], OracleUser(ds, qi))
        for record in result.session.minor_records:
            assert record.subspace.is_axis_parallel()

    def test_query_not_in_dataset(self, small_clustered):
        ds = small_clustered.dataset
        anchor = small_clustered.clusters[0].anchor
        result = InteractiveNNSearch(ds, FAST).run(
            anchor, AcceptEverythingUser()
        )
        assert result.neighbor_indices.size > 0
