"""Unit tests for repro.core.counting and repro.core.termination."""

import numpy as np
import pytest

from repro.core.counting import PreferenceCounter
from repro.core.termination import StabilityTermination, top_set_overlap
from repro.exceptions import ConfigurationError


class TestPreferenceCounter:
    def test_record_and_counts(self):
        counter = PreferenceCounter(10)
        live = np.array([2, 4, 6])
        counter.record(live, np.array([True, False, True]))
        counts = counter.counts
        assert counts[2] == 1 and counts[6] == 1 and counts[4] == 0
        assert counter.pick_sizes == [2]
        assert counter.weights == [1.0]

    def test_weighted_record(self):
        counter = PreferenceCounter(5)
        counter.record(np.array([0]), np.array([True]), weight=2.5)
        assert counter.counts[0] == 2.5
        assert counter.weights == [2.5]

    def test_counts_for_alignment(self):
        counter = PreferenceCounter(6)
        counter.record(np.array([1, 3]), np.array([True, True]))
        live = np.array([3, 5, 1])
        assert counter.counts_for(live).tolist() == [1.0, 0.0, 1.0]

    def test_unpicked(self):
        counter = PreferenceCounter(6)
        counter.record(np.array([1, 3, 5]), np.array([True, False, True]))
        assert counter.unpicked(np.array([1, 3, 5])).tolist() == [3]

    def test_rejected_view_records_zero(self):
        counter = PreferenceCounter(4)
        counter.record(np.arange(4), np.zeros(4, dtype=bool))
        assert counter.pick_sizes == [0]
        assert counter.projections_recorded == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PreferenceCounter(0)
        counter = PreferenceCounter(4)
        with pytest.raises(ConfigurationError):
            counter.record(np.arange(4), np.ones(3, dtype=bool))
        with pytest.raises(ConfigurationError):
            counter.record(np.arange(4), np.ones(4, dtype=bool), weight=0.0)


class TestTopSetOverlap:
    def test_full_overlap(self):
        assert top_set_overlap(np.array([1, 2, 3]), np.array([3, 2, 1])) == 1.0

    def test_partial(self):
        assert top_set_overlap(np.array([1, 2]), np.array([2, 3])) == 0.5

    def test_empty_current(self):
        assert top_set_overlap(np.array([1]), np.array([], dtype=int)) == 1.0


class TestStabilityTermination:
    def test_stops_when_stable(self):
        term = StabilityTermination(3, 0.9, min_iterations=2, max_iterations=10)
        probs = np.array([0.9, 0.8, 0.7, 0.1, 0.0])
        assert not term.should_stop(probs)  # first iteration: no comparison
        assert term.should_stop(probs)  # identical top set
        assert term.last_overlap == 1.0

    def test_does_not_stop_while_changing(self):
        term = StabilityTermination(2, 0.9, min_iterations=2, max_iterations=10)
        assert not term.should_stop(np.array([1.0, 0.9, 0.0, 0.0]))
        assert not term.should_stop(np.array([0.0, 0.0, 1.0, 0.9]))
        assert term.last_overlap == 0.0

    def test_min_iterations_respected(self):
        term = StabilityTermination(2, 0.5, min_iterations=3, max_iterations=10)
        probs = np.array([1.0, 0.9, 0.0])
        assert not term.should_stop(probs)
        assert not term.should_stop(probs)  # stable but below min iterations
        assert term.should_stop(probs)

    def test_max_iterations_forces_stop(self):
        term = StabilityTermination(2, 1.0, min_iterations=1, max_iterations=2)
        a = np.array([1.0, 0.9, 0.0])
        b = np.array([0.0, 0.9, 1.0])
        assert not term.should_stop(a)
        assert term.should_stop(b)  # hit max despite instability

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StabilityTermination(0, 0.9)
        with pytest.raises(ConfigurationError):
            StabilityTermination(3, 0.0)
