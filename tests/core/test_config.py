"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import SearchConfig
from repro.exceptions import ConfigurationError


class TestSearchConfig:
    def test_defaults_valid(self):
        cfg = SearchConfig()
        assert cfg.support > 0
        assert cfg.projection_restarts >= 1

    def test_effective_support_floor(self):
        cfg = SearchConfig(support=5)
        assert cfg.effective_support(20) == 20
        assert cfg.effective_support(3) == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"support": 0},
            {"grid_resolution": 1},
            {"bandwidth_scale": 0.0},
            {"overlap_threshold": 0.0},
            {"overlap_threshold": 1.5},
            {"min_major_iterations": 0},
            {"min_major_iterations": 5, "max_major_iterations": 4},
            {"projection_restarts": 0},
            {"projection_weight": 0.0},
            {"kde_mode": "approximate"},
            {"kde_mode": "EXACT"},
            {"kde_subsample": 1},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            SearchConfig(**kwargs)

    @pytest.mark.parametrize("mode", ["exact", "binned", "subsampled"])
    def test_kde_modes_accepted(self, mode):
        cfg = SearchConfig(kde_mode=mode, kde_subsample=128)
        assert cfg.kde_mode == mode
        assert cfg.kde_subsample == 128

    def test_kde_defaults_exact(self):
        cfg = SearchConfig()
        assert cfg.kde_mode == "exact"
        assert cfg.kde_subsample == 4096

    def test_frozen(self):
        cfg = SearchConfig()
        with pytest.raises(AttributeError):
            cfg.support = 99
