"""Unit tests for repro.core.serialization."""

import json

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.core.serialization import (
    load_result_dict,
    result_to_dict,
    save_result,
    session_to_dict,
)
from repro.interaction.oracle import OracleUser

FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


@pytest.fixture(scope="module")
def finished_result(small_clustered_module):
    ds = small_clustered_module.dataset
    qi = int(ds.cluster_indices(0)[0])
    return InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))


@pytest.fixture(scope="module")
def small_clustered_module():
    from repro.data.synthetic import (
        ProjectedClusterSpec,
        generate_projected_clusters,
    )

    spec = ProjectedClusterSpec(
        n_points=600, dim=10, n_clusters=3, cluster_dim=4, axis_parallel=True
    )
    return generate_projected_clusters(spec, np.random.default_rng(99))


class TestSessionToDict:
    def test_structure(self, finished_result):
        payload = session_to_dict(finished_result.session)
        assert payload["total_views"] == finished_result.session.total_views
        assert len(payload["minor_iterations"]) == payload["total_views"]
        assert len(payload["major_iterations"]) == len(
            finished_result.session.major_records
        )
        first = payload["minor_iterations"][0]
        assert {"major", "minor", "accepted", "profile"} <= set(first)
        assert "basis" not in first

    def test_include_bases(self, finished_result):
        payload = session_to_dict(finished_result.session, include_bases=True)
        basis = payload["minor_iterations"][0]["basis"]
        assert len(basis) == 2
        assert len(basis[0]) == 10

    def test_json_round_trip(self, finished_result):
        payload = session_to_dict(finished_result.session)
        assert json.loads(json.dumps(payload)) == payload


class TestResultToDict:
    def test_top_k_probabilities(self, finished_result):
        payload = result_to_dict(finished_result, top_k_probabilities=7)
        assert len(payload["probabilities"]) == 7
        probs = [entry["probability"] for entry in payload["probabilities"]]
        assert probs == sorted(probs, reverse=True)

    def test_full_probabilities(self, finished_result):
        payload = result_to_dict(finished_result, top_k_probabilities=None)
        assert len(payload["probabilities"]) == 600

    def test_metadata_fields(self, finished_result):
        payload = result_to_dict(finished_result)
        assert payload["support"] == finished_result.support
        assert payload["reason"] == finished_result.reason.value
        assert payload["neighbor_indices"] == (
            finished_result.neighbor_indices.tolist()
        )


class TestSaveLoad:
    def test_round_trip(self, finished_result, tmp_path):
        path = save_result(finished_result, tmp_path / "run.json")
        loaded = load_result_dict(path)
        assert loaded["support"] == finished_result.support
        assert loaded["session"]["total_views"] == (
            finished_result.session.total_views
        )

    def test_creates_directories(self, finished_result, tmp_path):
        path = save_result(finished_result, tmp_path / "a" / "b" / "run.json")
        assert path.exists()
