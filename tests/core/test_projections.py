"""Unit tests for repro.core.projections (Figs. 3-4)."""

import numpy as np
import pytest

from repro.core.projections import (
    find_query_centered_projection,
    orthogonal_projection_sequence,
)
from repro.exceptions import SubspaceError
from repro.geometry.subspace import Subspace


@pytest.fixture
def embedded_cluster(rng):
    """Cluster tight in dims (0, 1), uniform elsewhere, in 8 dims.

    Returns (points, query, member_mask).
    """
    n_members, n_noise, d = 150, 450, 8
    anchor = np.full(d, 0.5)
    members = rng.uniform(0, 1, size=(n_members, d))
    members[:, 0] = anchor[0] + rng.normal(0, 0.01, n_members)
    members[:, 1] = anchor[1] + rng.normal(0, 0.01, n_members)
    noise = rng.uniform(0, 1, size=(n_noise, d))
    points = np.vstack([members, noise])
    mask = np.zeros(600, dtype=bool)
    mask[:150] = True
    query = members[0]
    return points, query, mask


class TestFindProjection:
    def test_finds_signal_plane(self, embedded_cluster):
        points, query, mask = embedded_cluster
        result = find_query_centered_projection(
            points, query, Subspace.full(8), support=30,
            restarts=4, rng=np.random.default_rng(0),
        )
        # The projection should be (close to) the (e0, e1) plane: both
        # signal axes are nearly contained in it.
        proj = result.projection
        e0 = np.eye(8)[0]
        e1 = np.eye(8)[1]
        r0 = np.linalg.norm(proj.basis @ e0)
        r1 = np.linalg.norm(proj.basis @ e1)
        assert r0 > 0.9 and r1 > 0.9

    def test_projection_properties(self, embedded_cluster):
        points, query, _ = embedded_cluster
        current = Subspace.full(8)
        result = find_query_centered_projection(points, query, current, 30)
        assert result.projection.dim == 2
        assert result.remainder.dim == 6
        assert result.projection.is_orthogonal_to(result.remainder)
        assert result.projection.is_contained_in(current)

    def test_refinement_dims_halve(self, embedded_cluster):
        points, query, _ = embedded_cluster
        result = find_query_centered_projection(
            points, query, Subspace.full(8), 30
        )
        dims = result.refinement_dims
        assert dims[0] == 8
        assert dims[-1] == 2
        for a, b in zip(dims, dims[1:]):
            assert b == max(2, a // 2)

    def test_query_cluster_mostly_members(self, embedded_cluster):
        points, query, mask = embedded_cluster
        result = find_query_centered_projection(
            points, query, Subspace.full(8), 30,
            restarts=4, rng=np.random.default_rng(0),
        )
        cluster = result.query_cluster_indices
        assert cluster.size == 30
        assert mask[cluster].mean() > 0.8

    def test_axis_parallel_projection(self, embedded_cluster):
        points, query, _ = embedded_cluster
        result = find_query_centered_projection(
            points, query, Subspace.full(8), 30, axis_parallel=True
        )
        assert result.projection.is_axis_parallel()
        assert result.remainder.is_axis_parallel()

    def test_two_dim_current_returns_itself(self, rng):
        points = rng.normal(size=(50, 4))
        query = points[0]
        current = Subspace.from_axes([1, 3], 4)
        result = find_query_centered_projection(points, query, current, 10)
        assert result.projection.dim == 2
        assert result.projection.is_contained_in(current)
        assert result.remainder.dim == 0

    def test_rejects_1d_current(self, rng):
        points = rng.normal(size=(20, 3))
        with pytest.raises(SubspaceError):
            find_query_centered_projection(
                points, points[0], Subspace.from_axes([0], 3), 5
            )

    def test_restarts_require_rng(self, embedded_cluster):
        points, query, _ = embedded_cluster
        with pytest.raises(SubspaceError):
            find_query_centered_projection(
                points, query, Subspace.full(8), 30, restarts=3
            )

    def test_restarts_deterministic(self, embedded_cluster):
        points, query, _ = embedded_cluster
        a = find_query_centered_projection(
            points, query, Subspace.full(8), 30,
            restarts=4, rng=np.random.default_rng(5),
        )
        b = find_query_centered_projection(
            points, query, Subspace.full(8), 30,
            restarts=4, rng=np.random.default_rng(5),
        )
        assert np.allclose(a.projection.basis, b.projection.basis)

    def test_support_clamped_to_population(self, rng):
        points = rng.normal(size=(10, 4))
        result = find_query_centered_projection(
            points, points[0], Subspace.full(4), support=500
        )
        assert result.query_cluster_indices.size == 10


class TestOrthogonalSequence:
    def test_produces_mutually_orthogonal_planes(self, embedded_cluster):
        points, query, _ = embedded_cluster
        results = orthogonal_projection_sequence(points, query, 8, 30)
        assert len(results) == 4
        for i, a in enumerate(results):
            assert a.projection.dim == 2
            for b in results[i + 1 :]:
                assert a.projection.is_orthogonal_to(b.projection)

    def test_planes_span_space(self, embedded_cluster):
        points, query, _ = embedded_cluster
        results = orthogonal_projection_sequence(points, query, 8, 30)
        total = results[0].projection
        for r in results[1:]:
            total = total.direct_sum(r.projection)
        assert total.dim == 8

    def test_max_projections(self, embedded_cluster):
        points, query, _ = embedded_cluster
        results = orthogonal_projection_sequence(
            points, query, 8, 30, max_projections=2
        )
        assert len(results) == 2

    def test_first_projection_most_discriminative(self, embedded_cluster):
        """Graded subspace determination: signal axes come first."""
        points, query, _ = embedded_cluster
        results = orthogonal_projection_sequence(
            points, query, 8, 30, restarts=4, rng=np.random.default_rng(0)
        )
        first = results[0].projection
        signal = Subspace.from_axes([0, 1], 8)
        # Overlap of first projection with the signal plane is high.
        overlap = np.linalg.norm(first.basis @ signal.basis.T)
        assert overlap > 1.3  # max possible is sqrt(2) ~ 1.414

    def test_odd_dimension(self, rng):
        points = rng.normal(size=(100, 7))
        results = orthogonal_projection_sequence(points, points[0], 7, 10)
        assert len(results) == 3  # floor(7/2), one dimension unused
