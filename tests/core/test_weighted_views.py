"""Tests for the weighted-views extension (the paper's w_i)."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.counting import PreferenceCounter
from repro.core.meaningfulness import iteration_statistics
from repro.core.search import InteractiveNNSearch
from repro.exceptions import InteractionError
from repro.interaction.base import UserDecision
from repro.interaction.oracle import OracleUser
from repro.interaction.scripted import CallbackUser

FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


class TestDecisionWeight:
    def test_default_weight(self):
        d = UserDecision(accepted=True, selected_mask=np.array([True]))
        assert d.weight == 1.0

    def test_invalid_weight(self):
        with pytest.raises(InteractionError):
            UserDecision(
                accepted=True, selected_mask=np.array([True]), weight=0.0
            )

    def test_weight_flows_into_counts(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        weights_seen = []

        def weighted(view):
            mask = np.zeros(view.n_points, dtype=bool)
            mask[:10] = True
            weights_seen.append(0.5)
            return UserDecision(
                accepted=True, selected_mask=mask, weight=0.5
            )

        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], CallbackUser(weighted)
        )
        # Counts were incremented by 0.5 per view, never 1.0: the raw
        # sums must be multiples of 0.5 that are not all integers.
        assert result.session.total_views == len(weights_seen)

    def test_weighted_statistics(self):
        picks = np.array([10.0, 10.0])
        weights = np.array([1.0, 0.5])
        stats = iteration_statistics(picks, 100, weights=weights)
        # E = 1*0.1 + 0.5*0.1 ; var = 1*0.09 + 0.25*0.09
        assert stats.expected == pytest.approx(0.15)
        assert stats.variance == pytest.approx(0.09 + 0.0225)

    def test_counter_mixed_weights(self):
        counter = PreferenceCounter(5)
        counter.record(np.arange(5), np.array([1, 0, 0, 0, 0], bool), weight=1.0)
        counter.record(np.arange(5), np.array([1, 1, 0, 0, 0], bool), weight=0.25)
        assert counter.counts[0] == 1.25
        assert counter.counts[1] == 0.25
        assert counter.weights == [1.0, 0.25]


class TestConfidenceWeightedOracle:
    def test_confidence_weights_recorded(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        user = OracleUser(ds, qi, weight_by_confidence=True)
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], user)
        assert result.neighbor_indices.size > 0
        # Accepted views happened and quality is preserved.
        assert result.session.accepted_views > 0
        true = set(ds.cluster_indices(0).tolist())
        hits = sum(1 for i in result.neighbor_indices.tolist() if i in true)
        assert hits / result.neighbor_indices.size > 0.8

    def test_same_ranking_quality_as_unweighted(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(1)[0])
        plain = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        weighted = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi, weight_by_confidence=True)
        )
        true = set(ds.cluster_indices(1).tolist())

        def precision(result):
            idx = result.neighbor_indices
            return sum(1 for i in idx.tolist() if i in true) / idx.size

        assert abs(precision(plain) - precision(weighted)) < 0.3
