"""Property-based tests for the meaningfulness statistics (Fig. 8)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.meaningfulness import (
    MeaningfulnessAccumulator,
    iteration_statistics,
    meaningfulness_coefficients,
    meaningfulness_probabilities,
)


@st.composite
def iteration_setups(draw):
    """Random pick-count vectors with a population."""
    population = draw(st.integers(min_value=2, max_value=500))
    n_views = draw(st.integers(min_value=1, max_value=12))
    picks = draw(
        st.lists(
            st.integers(min_value=0, max_value=population),
            min_size=n_views,
            max_size=n_views,
        )
    )
    return np.asarray(picks, dtype=float), population


@given(iteration_setups())
@settings(max_examples=80, deadline=None)
def test_statistics_bounds(setup):
    picks, population = setup
    stats = iteration_statistics(picks, population)
    assert 0.0 <= stats.expected <= picks.size
    assert 0.0 <= stats.variance <= picks.size * 0.25 + 1e-12


@given(iteration_setups())
@settings(max_examples=80, deadline=None)
def test_probabilities_in_unit_interval(setup):
    picks, population = setup
    stats = iteration_statistics(picks, population)
    rng = np.random.default_rng(1)
    counts = rng.integers(0, picks.size + 1, size=37).astype(float)
    probs = meaningfulness_probabilities(counts, stats)
    assert np.all(probs >= 0)
    assert np.all(probs <= 1)


@given(iteration_setups())
@settings(max_examples=80, deadline=None)
def test_coefficients_monotone_in_counts(setup):
    """More picks never lowers the meaningfulness coefficient."""
    picks, population = setup
    stats = iteration_statistics(picks, population)
    counts = np.arange(picks.size + 1, dtype=float)
    m = meaningfulness_coefficients(counts, stats)
    assert np.all(np.diff(m) >= -1e-12)


@given(iteration_setups())
@settings(max_examples=80, deadline=None)
def test_expected_count_scores_zero(setup):
    """A point picked exactly as often as chance predicts gets P = 0."""
    picks, population = setup
    stats = iteration_statistics(picks, population)
    probs = meaningfulness_probabilities(np.array([stats.expected]), stats)
    assert probs[0] <= 1e-9


@given(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_accumulator_average_bounded(n_points, n_iterations, seed):
    rng = np.random.default_rng(seed)
    acc = MeaningfulnessAccumulator(n_points)
    for _ in range(n_iterations):
        live = np.arange(n_points)
        picks = rng.integers(0, n_points + 1, size=4).astype(float)
        stats = iteration_statistics(picks, n_points)
        counts = rng.integers(0, 5, size=n_points).astype(float)
        acc.update(live, counts, stats)
    averages = acc.averages()
    assert averages.shape == (n_points,)
    assert np.all(averages >= 0)
    assert np.all(averages <= 1 + 1e-12)
    assert acc.iterations == n_iterations
