"""Checkpoint/resume determinism and validation.

The central guarantee: interrupting a run at *any* minor-iteration
boundary, serializing the engine to JSON, deserializing, and resuming
yields a final :class:`SearchResult` **identical** to the uninterrupted
run — same neighbors, bit-equal probabilities, same reason, same
session records.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.engine import EnginePhase, SearchEngine, ViewRequest
from repro.core.search import InteractiveNNSearch, drive_pending
from repro.core.serialization import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    checkpoint_to_dict,
    load_checkpoint,
    resume_engine,
    save_checkpoint,
)
from repro.exceptions import CheckpointError, EngineStateError
from repro.interaction.base import validate_decision
from repro.interaction.oracle import OracleUser

CONFIG = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=3,
    projection_restarts=2,
)


@pytest.fixture
def clustered(small_clustered):
    return small_clustered.dataset


def _baseline(dataset, query_index):
    return InteractiveNNSearch(dataset, CONFIG).run(
        dataset.points[query_index], OracleUser(dataset, query_index)
    )


def _assert_identical(result, baseline):
    assert np.array_equal(result.neighbor_indices, baseline.neighbor_indices)
    assert np.array_equal(result.probabilities, baseline.probabilities)
    assert result.reason == baseline.reason
    assert result.support == baseline.support
    base_session = baseline.session
    session = result.session
    assert session.total_views == base_session.total_views
    assert session.accepted_views == base_session.accepted_views
    for got, expected in zip(session.minor_records, base_session.minor_records):
        assert got.major_index == expected.major_index
        assert got.minor_index == expected.minor_index
        assert got.accepted == expected.accepted
        assert got.threshold == expected.threshold
        assert np.array_equal(got.selected_indices, expected.selected_indices)
        assert np.array_equal(got.subspace.basis, expected.subspace.basis)
    for got, expected in zip(session.major_records, base_session.major_records):
        assert got == expected
    for got, expected in zip(
        session.probability_history, base_session.probability_history
    ):
        assert np.array_equal(got, expected)


def test_resume_identical_at_every_minor_boundary(clustered):
    """Interrupt/serialize/resume at each boundary: results byte-equal."""
    qi = int(clustered.cluster_indices(0)[0])
    baseline = _baseline(clustered, qi)
    total = baseline.session.total_views

    for interrupt_at in range(1, total + 1):
        user = OracleUser(clustered, qi)
        engine = SearchEngine(clustered, CONFIG)
        event = engine.start(clustered.points[qi])
        while isinstance(event, ViewRequest) and event.step < interrupt_at:
            decision = validate_decision(user.review_view(event.view), event.view)
            event = engine.submit(decision)
        assert isinstance(event, ViewRequest)

        # Full JSON round-trip, as a file on disk would do.
        payload = json.loads(json.dumps(checkpoint_to_dict(engine)))
        engine.close()

        resumed, pending = resume_engine(payload, clustered)
        assert resumed.phase == EnginePhase.AWAITING_DECISION
        # The recomputed pending view is identical to the interrupted one.
        assert pending.step == event.step
        assert pending.major_index == event.major_index
        assert pending.minor_index == event.minor_index
        assert np.array_equal(
            pending.view.subspace.basis, event.view.subspace.basis
        )
        assert np.array_equal(
            pending.view.projected_points, event.view.projected_points
        )

        result = drive_pending(resumed, pending, OracleUser(clustered, qi))
        _assert_identical(result, baseline)


def test_save_and_load_checkpoint_roundtrip(tmp_path, clustered):
    qi = int(clustered.cluster_indices(1)[0])
    engine = SearchEngine(clustered, CONFIG)
    event = engine.start(clustered.points[qi])
    user = OracleUser(clustered, qi)
    for _ in range(3):
        event = engine.submit(
            validate_decision(user.review_view(event.view), event.view)
        )
        assert isinstance(event, ViewRequest)

    path = save_checkpoint(engine, tmp_path / "run.ckpt.json")
    engine.close()
    payload = load_checkpoint(path)
    assert payload["format"] == CHECKPOINT_FORMAT
    assert payload["version"] == CHECKPOINT_VERSION

    resumed, pending = resume_engine(payload, clustered)
    result = drive_pending(resumed, pending, OracleUser(clustered, qi))
    _assert_identical(result, _baseline(clustered, qi))


def test_checkpoint_requires_pending_decision(clustered):
    engine = SearchEngine(clustered, CONFIG)
    with pytest.raises(EngineStateError):
        checkpoint_to_dict(engine)  # never started
    qi = int(clustered.cluster_indices(0)[0])
    result = InteractiveNNSearch(clustered, CONFIG).run(
        clustered.points[qi], OracleUser(clustered, qi)
    )
    assert result is not None
    finished = SearchEngine(clustered, CONFIG)
    event = finished.start(clustered.points[qi])
    user = OracleUser(clustered, qi)
    while isinstance(event, ViewRequest):
        event = finished.submit(
            validate_decision(user.review_view(event.view), event.view)
        )
    with pytest.raises(EngineStateError):
        checkpoint_to_dict(finished)  # already finished


def _suspended_checkpoint(dataset, query_index):
    engine = SearchEngine(dataset, CONFIG)
    engine.start(dataset.points[query_index])
    payload = checkpoint_to_dict(engine)
    engine.close()
    return payload


def test_resume_rejects_wrong_format_and_version(clustered):
    payload = _suspended_checkpoint(clustered, 0)
    bad_format = dict(payload, format="something-else")
    with pytest.raises(CheckpointError):
        resume_engine(bad_format, clustered)
    bad_version = dict(payload, version=CHECKPOINT_VERSION + 1)
    with pytest.raises(CheckpointError):
        resume_engine(bad_version, clustered)
    with pytest.raises(CheckpointError):
        resume_engine({"format": CHECKPOINT_FORMAT}, clustered)


def test_resume_rejects_mismatched_dataset(clustered, small_uniform):
    payload = _suspended_checkpoint(clustered, 0)
    with pytest.raises(CheckpointError, match="dataset mismatch"):
        resume_engine(payload, small_uniform)


def test_resume_rejects_tampered_points(clustered):
    payload = _suspended_checkpoint(clustered, 0)
    from dataclasses import replace

    perturbed = replace(clustered, points=clustered.points + 1e-9)
    with pytest.raises(CheckpointError, match="sha256"):
        resume_engine(payload, perturbed)


def test_resume_rejects_malformed_state(clustered):
    payload = _suspended_checkpoint(clustered, 0)
    broken = json.loads(json.dumps(payload))
    del broken["state"]["rng_state"]
    with pytest.raises(CheckpointError, match="malformed"):
        resume_engine(broken, clustered)


def test_load_checkpoint_rejects_non_checkpoint_file(tmp_path):
    path = tmp_path / "not_a_checkpoint.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(CheckpointError):
        load_checkpoint(path)
