"""Tests for the query-refinement extension."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.refinement import RefinedSearch, moved_query, refine_search
from repro.core.search import InteractiveNNSearch
from repro.exceptions import ConfigurationError
from repro.interaction.oracle import OracleUser
from repro.interaction.scripted import CallbackUser
from repro.interaction.base import UserDecision

FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


def _oracle_factory(dataset, label):
    mask = dataset.labels == label

    def factory(query):
        # Oracle relevance is the fixed true cluster; the query moves.
        return OracleUser(dataset, int(dataset.cluster_indices(label)[0]),
                          relevant_mask=mask)

    return factory


class TestMovedQuery:
    def test_moves_toward_weighted_centroid(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        moved = moved_query(ds.points[qi], ds.points, result, step=1.0)
        # The moved query is closer to the cluster centroid.
        members = ds.cluster_indices(0)
        centroid = ds.points[members].mean(axis=0)
        # Compare within the cluster's own subspace where it is tight.
        basis = small_clustered.clusters[0].basis
        before = np.linalg.norm((ds.points[qi] - centroid) @ basis.T)
        after = np.linalg.norm((moved - centroid) @ basis.T)
        assert after <= before + 1e-9

    def test_half_step_interpolates(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        full = moved_query(ds.points[qi], ds.points, result, step=1.0)
        half = moved_query(ds.points[qi], ds.points, result, step=0.5)
        assert np.allclose(half, 0.5 * ds.points[qi] + 0.5 * full)

    def test_no_signal_keeps_query(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        reject = CallbackUser(lambda v: UserDecision.reject(v.n_points))
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], reject)
        moved = moved_query(ds.points[qi], ds.points, result)
        assert np.allclose(moved, ds.points[qi])

    def test_step_validation(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        with pytest.raises(ConfigurationError):
            moved_query(ds.points[qi], ds.points, result, step=1.5)


class TestRefineSearch:
    def test_runs_and_converges(self, small_clustered):
        ds = small_clustered.dataset
        search = InteractiveNNSearch(ds, FAST)
        qi = int(ds.cluster_indices(0)[0])
        refined = refine_search(
            search,
            ds.points[qi],
            _oracle_factory(ds, 0),
            max_rounds=3,
        )
        assert isinstance(refined, RefinedSearch)
        assert 1 <= len(refined.steps) <= 3
        final = refined.final
        # The final neighbor set is dominated by true members.
        true = set(ds.cluster_indices(0).tolist())
        if final.neighbors.size:
            hits = sum(1 for i in final.neighbors.tolist() if i in true)
            assert hits / final.neighbors.size > 0.8

    def test_single_round(self, small_clustered):
        ds = small_clustered.dataset
        search = InteractiveNNSearch(ds, FAST)
        qi = int(ds.cluster_indices(1)[0])
        refined = refine_search(
            search, ds.points[qi], _oracle_factory(ds, 1), max_rounds=1
        )
        assert len(refined.steps) == 1
        assert not refined.converged

    def test_round_validation(self, small_clustered):
        ds = small_clustered.dataset
        search = InteractiveNNSearch(ds, FAST)
        with pytest.raises(ConfigurationError):
            refine_search(
                search, ds.points[0], _oracle_factory(ds, 0), max_rounds=0
            )

    def test_fringe_query_improves(self, small_clustered):
        """Start from the cluster member farthest from the centroid."""
        ds = small_clustered.dataset
        members = ds.cluster_indices(2)
        basis = small_clustered.clusters[2].basis
        centroid = ds.points[members].mean(axis=0)
        dists = np.linalg.norm((ds.points[members] - centroid) @ basis.T, axis=1)
        fringe = int(members[np.argmax(dists)])
        search = InteractiveNNSearch(ds, FAST)
        refined = refine_search(
            search, ds.points[fringe], _oracle_factory(ds, 2), max_rounds=3
        )
        true = set(members.tolist())

        def recall(step):
            if not step.neighbors.size:
                return 0.0
            return sum(1 for i in step.neighbors.tolist() if i in true) / len(true)

        # Refinement keeps a solid recovery (it may trade a little
        # recall for stability once the set has stabilized) and never
        # collapses.
        assert recall(refined.final) >= 0.5
        assert max(recall(step) for step in refined.steps) >= 0.7
