"""Tests for the paper-exact configuration preset."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.exceptions import ConfigurationError
from repro.interaction.oracle import OracleUser


class TestPaperExactPreset:
    def test_disables_extensions(self):
        cfg = SearchConfig.paper_exact()
        assert cfg.projection_restarts == 1
        assert cfg.bandwidth_scale == 1.0

    def test_overrides_apply(self):
        cfg = SearchConfig.paper_exact(support=42, max_major_iterations=3)
        assert cfg.support == 42
        assert cfg.max_major_iterations == 3
        assert cfg.projection_restarts == 1

    def test_invalid_override_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchConfig.paper_exact(support=0)

    def test_paper_exact_still_works_on_easy_data(self, small_clustered):
        """Verbatim Fig. 2/3 machinery recovers an easy cluster."""
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        cfg = SearchConfig.paper_exact(
            support=15,
            grid_resolution=30,
            min_major_iterations=2,
            max_major_iterations=2,
        )
        result = InteractiveNNSearch(ds, cfg).run(ds.points[qi], OracleUser(ds, qi))
        true = set(ds.cluster_indices(0).tolist())
        hits = sum(1 for i in result.neighbor_indices.tolist() if i in true)
        assert hits / result.neighbor_indices.size > 0.6

    def test_extensions_never_hurt_on_easy_data(self, small_clustered):
        """Library defaults perform at least comparably to paper-exact."""
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(1)[0])
        true = set(ds.cluster_indices(1).tolist())

        def precision(cfg):
            result = InteractiveNNSearch(ds, cfg).run(
                ds.points[qi], OracleUser(ds, qi)
            )
            idx = result.neighbor_indices
            return sum(1 for i in idx.tolist() if i in true) / idx.size

        paper = precision(
            SearchConfig.paper_exact(
                support=15,
                grid_resolution=30,
                min_major_iterations=2,
                max_major_iterations=2,
            )
        )
        default = precision(
            SearchConfig(
                support=15,
                grid_resolution=30,
                min_major_iterations=2,
                max_major_iterations=2,
                projection_restarts=3,
            )
        )
        assert default >= paper - 0.1
