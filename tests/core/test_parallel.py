"""Process-parallel batch executor: parity, faults, and cleanup.

The acceptance criteria for ``run_batch(workers=N)``:

* results are **byte-identical** to in-process execution *and* to the
  pre-refactor sequential goldens, for every worker count;
* parity holds with a mid-run checkpoint/resume round trip inside
  every worker;
* a worker killed mid-query is retried (once by default) and the batch
  still completes with identical results; a query that keeps killing
  workers raises :class:`WorkerCrashError`;
* no orphaned shared-memory segments remain in any of those cases
  (asserted in a ``finally``-style fixture check);
* unpicklable factories fail fast with an actionable error;
* worker-side counters are folded into the parent registry.

Everything here runs on the real spawn pool — no mocks — so the suite
is slower than the rest of ``tests/core``; worker counts are kept small
and the dataset/config match the fast golden-batch case.
"""

from __future__ import annotations

import glob
import logging
import os
import signal
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.batch import run_batch
from repro.core.config import SearchConfig
from repro.core.parallel import (
    WorkerCrashError,
    run_parallel_batch,
)
from repro.core.search import InteractiveNNSearch
from repro.exceptions import ConfigurationError
from repro.interaction.factories import DatasetUserFactory, OracleFactory
from repro.obs.metrics import REGISTRY, Histogram, counter_values
from repro.obs.trace import finish_trace, start_trace, tracing_enabled

from tests.core.test_engine_golden import GOLDENS
from tests.golden.make_goldens import clustered_dataset

FAST_CONFIG = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


def _leftover_segments() -> list[str]:
    """Shared-memory segments left behind by the executor, if any."""
    if os.path.isdir("/dev/shm"):
        return sorted(glob.glob("/dev/shm/repro-batch-*"))
    return []  # pragma: no cover - non-tmpfs platforms


@pytest.fixture(autouse=True)
def no_orphaned_shared_memory():
    """Every test must leave /dev/shm free of executor segments."""
    before = _leftover_segments()
    try:
        yield
    finally:
        after = _leftover_segments()
        leaked = sorted(set(after) - set(before))
        assert not leaked, f"orphaned shared memory segments: {leaked}"


def _assert_entries_identical(got, expected) -> None:
    assert [e.query_index for e in got] == [e.query_index for e in expected]
    for a, b in zip(got, expected):
        assert a.neighbors.tolist() == b.neighbors.tolist()
        assert a.result.neighbor_indices.tolist() == (
            b.result.neighbor_indices.tolist()
        )
        assert a.result.probabilities.tolist() == (
            b.result.probabilities.tolist()
        )
        assert a.result.reason == b.result.reason
        assert a.diagnosis.meaningful == b.diagnosis.meaningful


# ----------------------------------------------------------------------
# Parity: workers=4 vs workers=1 vs pre-refactor goldens
# ----------------------------------------------------------------------
def test_parallel_matches_sequential_and_golden():
    ds = clustered_dataset()
    golden = GOLDENS["batch"]
    queries = np.asarray(golden["query_indices"], dtype=int)
    search = InteractiveNNSearch(ds, FAST_CONFIG)

    sequential = run_batch(search, queries, OracleFactory(), workers=1)
    parallel = run_batch(search, queries, OracleFactory(), workers=4)

    _assert_entries_identical(parallel.entries, sequential.entries)
    # And both match the pre-refactor sequential goldens exactly.
    assert [e.query_index for e in parallel.entries] == golden["query_indices"]
    for entry, expected in zip(parallel.entries, golden["entries"]):
        assert entry.neighbors.tolist() == expected["neighbors"]
        assert entry.result.neighbor_indices.tolist() == (
            expected["neighbor_indices"]
        )
        assert entry.result.probabilities.tolist() == expected["probabilities"]
        assert entry.result.reason.value == expected["reason"]
        assert bool(entry.diagnosis.meaningful) == expected["meaningful"]


def test_parallel_parity_under_checkpoint_round_trip():
    """Suspend/resume through the JSON codec mid-run in every worker."""
    ds = clustered_dataset()
    queries = np.asarray(GOLDENS["batch"]["query_indices"], dtype=int)
    plain = run_parallel_batch(
        ds, FAST_CONFIG, queries, OracleFactory(), workers=2
    )
    round_tripped = run_parallel_batch(
        ds,
        FAST_CONFIG,
        queries,
        OracleFactory(),
        workers=2,
        checkpoint_round_trip=True,
    )
    _assert_entries_identical(round_tripped.entries, plain.entries)


def test_duplicate_queries_are_supported():
    """Duplicates rerun identical searches — entries repeat verbatim."""
    ds = clustered_dataset()
    queries = np.array([0, 1, 0], dtype=int)
    result = run_parallel_batch(
        ds, FAST_CONFIG, queries, OracleFactory(), workers=2
    )
    assert [e.query_index for e in result.entries] == [0, 1, 0]
    first, _, repeat = result.entries
    assert first.neighbors.tolist() == repeat.neighbors.tolist()
    assert first.result.probabilities.tolist() == (
        repeat.result.probabilities.tolist()
    )


# ----------------------------------------------------------------------
# Fault injection: a worker killed mid-query
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KillOnceFactory(DatasetUserFactory):
    """SIGKILLs its own worker the first time *victim* is attempted.

    The sentinel file records that the kill already happened, so the
    retry proceeds normally.  Deliberately brutal: SIGKILL cannot be
    caught, so the pool genuinely breaks.
    """

    sentinel: str
    victim: int

    def build(self, dataset, query_index):
        if query_index == self.victim and not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as fh:
                fh.write(str(os.getpid()))
            os.kill(os.getpid(), signal.SIGKILL)
        return OracleFactory().build(dataset, query_index)


@dataclass(frozen=True)
class AlwaysKillFactory(DatasetUserFactory):
    """SIGKILLs the worker on *every* attempt of *victim*."""

    victim: int

    def build(self, dataset, query_index):
        if query_index == self.victim:
            os.kill(os.getpid(), signal.SIGKILL)
        return OracleFactory().build(dataset, query_index)


def test_killed_worker_is_retried_and_batch_completes(tmp_path):
    ds = clustered_dataset()
    queries = np.asarray(GOLDENS["batch"]["query_indices"], dtype=int)
    victim = int(queries[1])
    restarts_before = REGISTRY.counter("batch.parallel.pool_restarts").value
    retries_before = REGISTRY.counter("batch.parallel.retries").value

    sentinel = tmp_path / "killed-once"
    result = run_parallel_batch(
        ds,
        FAST_CONFIG,
        queries,
        KillOnceFactory(sentinel=str(sentinel), victim=victim),
        workers=2,
    )
    assert sentinel.exists(), "the kill never fired"
    # The batch completed with results identical to the goldens.
    golden = GOLDENS["batch"]
    assert [e.query_index for e in result.entries] == golden["query_indices"]
    for entry, expected in zip(result.entries, golden["entries"]):
        assert entry.result.probabilities.tolist() == expected["probabilities"]
    # The crash was observed and charged.
    assert (
        REGISTRY.counter("batch.parallel.pool_restarts").value
        > restarts_before
    )
    assert REGISTRY.counter("batch.parallel.retries").value > retries_before


def test_repeat_crasher_exhausts_retries_and_cleans_up():
    ds = clustered_dataset()
    queries = np.array([0, 1], dtype=int)
    with pytest.raises(WorkerCrashError, match="crashed its worker"):
        run_parallel_batch(
            ds,
            FAST_CONFIG,
            queries,
            AlwaysKillFactory(victim=1),
            workers=2,
            max_retries=1,
        )
    # The autouse fixture asserts no orphaned segments survived the raise.


# ----------------------------------------------------------------------
# Fast-failing misconfiguration
# ----------------------------------------------------------------------
def test_unpicklable_factory_fails_fast():
    ds = clustered_dataset()
    with pytest.raises(ConfigurationError, match="picklable"):
        run_parallel_batch(
            ds,
            FAST_CONFIG,
            np.array([0]),
            lambda qi: None,  # lambdas cannot cross a process boundary
            workers=2,
        )


def test_run_batch_rejects_nonpositive_workers():
    ds = clustered_dataset()
    search = InteractiveNNSearch(ds, FAST_CONFIG)
    with pytest.raises(ConfigurationError, match="workers"):
        run_batch(search, np.array([0]), OracleFactory(), workers=0)


# ----------------------------------------------------------------------
# Worker observability reaches the parent
# ----------------------------------------------------------------------
def test_worker_counters_are_merged_into_parent_registry():
    ds = clustered_dataset()
    queries = np.array([0, 1], dtype=int)
    runs_before = REGISTRY.counter("search.runs").value
    tasks_before = REGISTRY.counter("batch.parallel.tasks").value
    run_parallel_batch(ds, FAST_CONFIG, queries, OracleFactory(), workers=2)
    # Each worker's engine bumped search.runs in *its* process; the
    # deltas must land here.
    assert REGISTRY.counter("search.runs").value >= runs_before + 2
    assert REGISTRY.counter("batch.parallel.tasks").value == tasks_before + 2


# Counters whose totals legitimately depend on the process topology:
# the KDE grid cache is per-process (one shared cache sequentially,
# one per worker in parallel), the merge-tree store rides in that same
# cache (builds/source passes dedupe across queries only within one
# process), and ``batch.*`` belongs to the executor itself, not the
# per-query engine work.
_TOPOLOGY_DEPENDENT_PREFIXES = ("kde.cache.", "connectivity.merge_tree.", "batch.")


def _engine_counter_values() -> dict[str, float]:
    return {
        name: value
        for name, value in counter_values().items()
        if not name.startswith(_TOPOLOGY_DEPENDENT_PREFIXES)
    }


def _histogram_state(name: str) -> tuple[tuple[int, ...], float, int]:
    instrument = REGISTRY.get(name)
    if not isinstance(instrument, Histogram):
        return ((), 0.0, 0)
    return instrument.counts, instrument.sum, instrument.count


def test_parallel_telemetry_parity_with_sequential():
    """Counter and histogram totals match across process topologies.

    Engines are isolated, so every query performs identical work no
    matter which process runs it.  With worker snapshots merged back,
    the parent registry after ``workers=4`` must show the same
    per-engine counter deltas and the same deterministic histogram
    observations (``connectivity.flood_fill.calls_per_step`` records
    one exact value per engine step, always) as the in-process
    sequential run.
    """
    ds = clustered_dataset()
    queries = np.array([0, 1, 2, 3], dtype=int)
    search = InteractiveNNSearch(ds, FAST_CONFIG)

    def run_and_delta(workers: int):
        counters_before = _engine_counter_values()
        hist_before = _histogram_state("connectivity.flood_fill.calls_per_step")
        run_batch(search, queries, OracleFactory(), workers=workers)
        counters_after = _engine_counter_values()
        hist_after = _histogram_state("connectivity.flood_fill.calls_per_step")
        counter_delta = {
            name: counters_after[name] - counters_before.get(name, 0.0)
            for name in counters_after
            if counters_after[name] != counters_before.get(name, 0.0)
        }
        if hist_after[0] and hist_before[0]:
            bucket_delta = tuple(
                a - b for a, b in zip(hist_after[0], hist_before[0])
            )
        else:
            bucket_delta = hist_after[0]
        return counter_delta, (
            bucket_delta,
            hist_after[1] - hist_before[1],
            hist_after[2] - hist_before[2],
        )

    seq_counters, seq_hist = run_and_delta(1)
    par_counters, par_hist = run_and_delta(4)

    assert seq_counters, "sequential run moved no counters?"
    assert par_counters == pytest.approx(seq_counters)
    # Histogram totals: same bucket deltas, same sum, same count.
    assert par_hist[0] == seq_hist[0]
    assert par_hist[1] == pytest.approx(seq_hist[1])
    assert par_hist[2] == seq_hist[2]
    assert par_hist[2] > 0, "per-step histogram never observed"


def test_traced_parallel_batch_adopts_worker_spans_on_lanes():
    """``--trace`` on a parallel batch yields one multi-lane trace."""
    ds = clustered_dataset()
    queries = np.array([0, 1, 2, 3], dtype=int)
    start_trace(workload="parity-test")
    try:
        run_parallel_batch(
            ds, FAST_CONFIG, queries, OracleFactory(), workers=2
        )
    finally:
        report = finish_trace()
    assert report is not None
    lanes = report.lanes()
    assert 0 in lanes, "parent spans missing"
    assert len(lanes) >= 2, f"no worker lanes adopted: {lanes}"
    worker_steps = [
        s for s in report.find("engine.step") if s.lane != 0
    ]
    assert worker_steps, "no worker engine.step spans in the trace"
    # Worker subtrees keep their structure (children share the lane).
    parents = [
        s
        for s in report.iter_spans()
        if s.lane != 0 and s.children
    ]
    assert parents
    assert all(
        child.lane == parent.lane
        for parent in parents
        for child in parent.children
    )


def test_untraced_parallel_batch_ships_no_spans():
    """Workers only install a task tracer when the parent traces."""
    ds = clustered_dataset()
    queries = np.array([0, 1], dtype=int)
    assert not tracing_enabled()
    result = run_parallel_batch(
        ds, FAST_CONFIG, queries, OracleFactory(), workers=2
    )
    assert len(result.entries) == 2  # telemetry off-path still works


def test_worker_histograms_and_gauges_are_merged():
    ds = clustered_dataset()
    queries = np.array([0, 1], dtype=int)
    _, _, count_before = _histogram_state("connectivity.flood_fill.calls_per_step")
    run_parallel_batch(ds, FAST_CONFIG, queries, OracleFactory(), workers=2)
    _, _, count_after = _histogram_state("connectivity.flood_fill.calls_per_step")
    assert count_after > count_before, "worker histogram deltas not merged"
    # The workers' KDE caches stored entries; the gauge last-write
    # crossed the boundary.
    gauge = REGISTRY.get("kde.cache.entries")
    assert gauge is not None and gauge.value >= 1


def test_telemetry_opt_out_warns_once_and_drops_data(monkeypatch, caplog):
    import repro.core.parallel as parallel_module

    monkeypatch.setattr(parallel_module, "_TELEMETRY_DROP_WARNED", False)
    ds = clustered_dataset()
    queries = np.array([0], dtype=int)
    runs_before = REGISTRY.counter("search.runs").value
    with caplog.at_level(logging.WARNING, logger="repro.obs"):
        run_parallel_batch(
            ds,
            FAST_CONFIG,
            queries,
            OracleFactory(),
            workers=1,
            telemetry=False,
        )
        first_warnings = [
            r for r in caplog.records if "telemetry" in r.getMessage()
        ]
        run_parallel_batch(
            ds,
            FAST_CONFIG,
            queries,
            OracleFactory(),
            workers=1,
            telemetry=False,
        )
        all_warnings = [
            r for r in caplog.records if "telemetry" in r.getMessage()
        ]
    assert len(first_warnings) == 1, "opt-out did not warn"
    assert len(all_warnings) == 1, "warning not one-time"
    # And the worker's counters were genuinely dropped.
    assert REGISTRY.counter("search.runs").value == runs_before
