"""Property-based tests for preference counting and pruning (hypothesis).

Invariants from the paper's Fig. 2/Fig. 7 bookkeeping:

* ``v(i)`` never decreases as projections are folded in;
* ``unpicked`` is exactly the zero-count subset of the live ids;
* :func:`prune_unpicked` removes exactly the zero-count ids — and only
  under its statistical guards (≥2 accepted views, never empties the
  live set).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting import (
    MIN_ACCEPTED_VIEWS_TO_PRUNE,
    PreferenceCounter,
    prune_unpicked,
)


@st.composite
def selection_histories(draw):
    """A counter-sized universe plus a sequence of (live, mask, weight)."""
    n_points = draw(st.integers(min_value=1, max_value=60))
    n_views = draw(st.integers(min_value=0, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    views = []
    for _ in range(n_views):
        live_size = int(rng.integers(1, n_points + 1))
        live = rng.choice(n_points, size=live_size, replace=False)
        mask = rng.random(live_size) < rng.random()
        weight = float(rng.uniform(0.1, 3.0))
        views.append((live, mask, weight))
    return n_points, views


@given(selection_histories())
@settings(max_examples=80, deadline=None)
def test_counts_monotone_nondecreasing(history):
    """Folding in another projection never lowers any v(i)."""
    n_points, views = history
    counter = PreferenceCounter(n_points)
    previous = counter.counts
    for live, mask, weight in views:
        counter.record(live, mask, weight=weight)
        current = counter.counts
        assert np.all(current >= previous - 1e-12)
        previous = current
    assert counter.projections_recorded == len(views)


@given(selection_histories())
@settings(max_examples=80, deadline=None)
def test_unpicked_is_exactly_the_zero_count_subset(history):
    """``unpicked(live)`` ≡ {i ∈ live : v(i) == 0}, order preserved."""
    n_points, views = history
    counter = PreferenceCounter(n_points)
    for live, mask, weight in views:
        counter.record(live, mask, weight=weight)
    universe = np.arange(n_points)
    unpicked = counter.unpicked(universe)
    zero = universe[counter.counts == 0]
    assert np.array_equal(unpicked, zero)
    # And counts_for alignment: every unpicked id reads back 0.
    assert np.all(counter.counts_for(unpicked) == 0)


@given(selection_histories())
@settings(max_examples=80, deadline=None)
def test_prune_removes_exactly_zero_count_ids(history):
    """Survivors = live ∩ {v > 0}, modulo the two collapse guards."""
    n_points, views = history
    counter = PreferenceCounter(n_points)
    for live, mask, weight in views:
        counter.record(live, mask, weight=weight)
    live = np.arange(n_points)
    pruned = prune_unpicked(live, counter)
    accepted = sum(1 for s in counter.pick_sizes if s > 0)
    positive = live[counter.counts_for(live) > 0]
    if accepted < MIN_ACCEPTED_VIEWS_TO_PRUNE or positive.size == 0:
        # Guarded: nothing may be pruned.
        assert np.array_equal(pruned, live)
    else:
        assert np.array_equal(pruned, positive)
        # Exactness both ways: no zero-count survivor, no positive loss.
        assert np.all(counter.counts_for(pruned) > 0)
        assert np.all(np.isin(positive, pruned))


@given(selection_histories())
@settings(max_examples=50, deadline=None)
def test_prune_is_idempotent(history):
    """Pruning a pruned set changes nothing (counts are fixed)."""
    n_points, views = history
    counter = PreferenceCounter(n_points)
    for live, mask, weight in views:
        counter.record(live, mask, weight=weight)
    once = prune_unpicked(np.arange(n_points), counter)
    twice = prune_unpicked(once, counter)
    assert np.array_equal(once, twice)


def test_prune_guard_single_accepted_view():
    """One accepted view is not enough evidence to prune."""
    counter = PreferenceCounter(6)
    counter.record(np.arange(6), np.array([1, 1, 0, 0, 0, 0], dtype=bool))
    live = np.arange(6)
    assert np.array_equal(prune_unpicked(live, counter), live)
    # A second accepted view unlocks the prune.
    counter.record(np.arange(6), np.array([1, 0, 1, 0, 0, 0], dtype=bool))
    assert np.array_equal(prune_unpicked(live, counter), np.array([0, 1, 2]))


def test_prune_guard_all_rejected_views():
    """With zero accepted views there is no signal — nothing is pruned."""
    counter = PreferenceCounter(5)
    nothing = np.zeros(5, dtype=bool)
    counter.record(np.arange(5), nothing)
    counter.record(np.arange(5), nothing)
    counter.record(np.arange(5), nothing)
    live = np.array([1, 3, 4])
    assert np.array_equal(prune_unpicked(live, counter), live)


def test_prune_guard_never_empties_live_set():
    """When every live point has zero count, pruning is a no-op."""
    counter = PreferenceCounter(5)
    picks = np.array([1, 1, 0, 0, 0], dtype=bool)
    counter.record(np.arange(5), picks)
    counter.record(np.arange(5), picks)  # two accepted views: guard off
    live = np.array([3, 4])  # none of these were ever picked
    assert np.array_equal(prune_unpicked(live, counter), live)
