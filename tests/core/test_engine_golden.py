"""Golden equivalence: the engine reproduces the pre-refactor loop.

``tests/golden/search_goldens.json`` was captured from the monolithic
blocking-loop implementation of :class:`InteractiveNNSearch` immediately
before the sans-io refactor (see ``tests/golden/make_goldens.py``).
These tests lock in the acceptance criterion that the engine-driven
``run()`` produces **byte-identical** outputs — neighbor indices,
full-precision probabilities, termination reason, per-iteration session
digests, and projection bases — across materially different
configurations (default, axis-parallel, paper-exact/heuristic, and
weighted/no-prune).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.batch import run_batch
from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.interaction.heuristic import HeuristicUser
from repro.interaction.oracle import OracleUser

from tests.golden.make_goldens import CASES, clustered_dataset, uniform

GOLDENS = json.loads(
    (Path(__file__).parents[1] / "golden" / "search_goldens.json").read_text()
)


def _build(case: dict):
    ds = clustered_dataset() if case["dataset"] == "clustered" else uniform()
    q = case["query"]
    if q[0] == "cluster":
        query_index = int(ds.cluster_indices(q[1])[q[2]])
    else:
        query_index = int(q[1])
    params = dict(case["config"])
    if params.pop("_paper_exact", False):
        config = SearchConfig.paper_exact(**params)
    else:
        config = SearchConfig(**params)
    if case["user"] == "oracle":
        user = OracleUser(ds, query_index)
    elif case["user"] == "oracle_weighted":
        user = OracleUser(ds, query_index, weight_by_confidence=True)
    else:
        user = HeuristicUser()
    return ds, query_index, config, user


@pytest.mark.parametrize("name", sorted(CASES))
def test_engine_matches_pre_refactor_golden(name):
    ds, query_index, config, user = _build(CASES[name])
    golden = GOLDENS["cases"][name]
    assert golden["query_index"] == query_index

    result = InteractiveNNSearch(ds, config).run(ds.points[query_index], user)

    # Exact — no tolerance anywhere.
    assert result.neighbor_indices.tolist() == golden["neighbor_indices"]
    assert result.probabilities.tolist() == golden["probabilities"]
    assert result.support == golden["support"]
    assert result.reason.value == golden["reason"]

    session = result.session
    history = [p.tolist() for p in session.probability_history]
    assert history == golden["probability_history"]

    assert len(session.minor_records) == len(golden["minor_records"])
    for record, expected in zip(session.minor_records, golden["minor_records"]):
        assert record.major_index == expected["major"]
        assert record.minor_index == expected["minor"]
        assert record.accepted == expected["accepted"]
        assert record.threshold == expected["threshold"]
        assert record.selected_count == expected["selected_count"]
        assert record.live_count == expected["live_count"]
        assert list(record.refinement_dims) == expected["refinement_dims"]
        assert record.selected_indices.tolist() == expected["selected_indices"]
        assert record.subspace.basis.tolist() == expected["basis"]

    assert len(session.major_records) == len(golden["major_records"])
    for record, expected in zip(session.major_records, golden["major_records"]):
        assert record.index == expected["index"]
        assert record.live_count_before == expected["live_before"]
        assert record.live_count_after == expected["live_after"]
        assert list(record.pick_counts) == expected["pick_counts"]
        assert record.expected == expected["expected"]
        assert record.variance == expected["variance"]
        assert record.accepted_views == expected["accepted_views"]
        assert record.overlap == expected["overlap"]


@pytest.mark.parametrize("max_in_flight", [1, 3, 8])
def test_batch_matches_pre_refactor_golden(max_in_flight):
    ds = clustered_dataset()
    config = SearchConfig(
        support=15,
        grid_resolution=30,
        min_major_iterations=2,
        max_major_iterations=2,
        projection_restarts=2,
    )
    golden = GOLDENS["batch"]
    queries = np.asarray(golden["query_indices"], dtype=int)
    batch = run_batch(
        InteractiveNNSearch(ds, config),
        queries,
        lambda qi: OracleUser(ds, qi),
        max_in_flight=max_in_flight,
    )
    assert [e.query_index for e in batch.entries] == golden["query_indices"]
    for entry, expected in zip(batch.entries, golden["entries"]):
        assert entry.neighbors.tolist() == expected["neighbors"]
        assert entry.result.neighbor_indices.tolist() == (
            expected["neighbor_indices"]
        )
        assert entry.result.probabilities.tolist() == expected["probabilities"]
        assert entry.result.reason.value == expected["reason"]
        assert bool(entry.diagnosis.meaningful) == expected["meaningful"]
