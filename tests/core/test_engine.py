"""Unit tests for the sans-io :class:`SearchEngine` state machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.engine import (
    DatasetPrecomputation,
    EnginePhase,
    SearchEngine,
    SearchResult,
    TerminationReason,
    ViewRequest,
)
from repro.core.search import InteractiveNNSearch, drive
from repro.data.dataset import Dataset
from repro.exceptions import (
    ConfigurationError,
    DimensionalityError,
    EngineStateError,
)
from repro.interaction.oracle import OracleUser

CONFIG = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


@pytest.fixture
def clustered(small_clustered):
    return small_clustered.dataset


def test_lifecycle_phases(clustered):
    qi = int(clustered.cluster_indices(0)[0])
    user = OracleUser(clustered, qi)
    engine = SearchEngine(clustered, CONFIG)
    assert engine.phase == EnginePhase.CREATED
    assert not engine.finished

    event = engine.start(clustered.points[qi])
    assert isinstance(event, ViewRequest)
    assert engine.phase == EnginePhase.AWAITING_DECISION
    assert engine.pending_view is event.view
    assert event.major_index == 0 and event.minor_index == 0
    assert event.step == 1

    steps = 0
    while isinstance(event, ViewRequest):
        steps += 1
        decision = user.review_view(event.view)
        event = engine.submit(decision)
    assert isinstance(event, SearchResult)
    assert engine.phase == EnginePhase.FINISHED
    assert engine.finished
    assert engine.result is event
    assert engine.pending_view is None
    assert steps == event.session.total_views


def test_engine_matches_blocking_facade(clustered):
    qi = int(clustered.cluster_indices(0)[0])
    baseline = InteractiveNNSearch(clustered, CONFIG).run(
        clustered.points[qi], OracleUser(clustered, qi)
    )
    result = drive(
        SearchEngine(clustered, CONFIG),
        clustered.points[qi],
        OracleUser(clustered, qi),
    )
    assert np.array_equal(result.neighbor_indices, baseline.neighbor_indices)
    assert np.array_equal(result.probabilities, baseline.probabilities)
    assert result.reason == baseline.reason


def test_view_request_metadata_tracks_iterations(clustered):
    qi = int(clustered.cluster_indices(0)[0])
    user = OracleUser(clustered, qi)
    engine = SearchEngine(clustered, CONFIG)
    event = engine.start(clustered.points[qi])
    seen = []
    step = 0
    while isinstance(event, ViewRequest):
        step += 1
        assert event.step == step
        seen.append((event.major_index, event.minor_index))
        state = engine.state
        assert (state.major, state.minor) == seen[-1]
        event = engine.submit(user.review_view(event.view))
    # Coordinates are lexicographically non-decreasing.
    assert seen == sorted(seen)
    assert len(set(seen)) == len(seen)


def test_start_twice_raises(clustered):
    engine = SearchEngine(clustered, CONFIG)
    engine.start(clustered.points[0])
    with pytest.raises(EngineStateError):
        engine.start(clustered.points[0])


def test_submit_without_pending_raises(clustered):
    engine = SearchEngine(clustered, CONFIG)
    with pytest.raises(EngineStateError):
        engine.submit(None)


def test_state_and_result_guards(clustered):
    engine = SearchEngine(clustered, CONFIG)
    with pytest.raises(EngineStateError):
        _ = engine.state
    with pytest.raises(EngineStateError):
        _ = engine.result
    engine.start(clustered.points[0])
    with pytest.raises(EngineStateError):
        _ = engine.result


def test_query_shape_validated(clustered):
    engine = SearchEngine(clustered, CONFIG)
    with pytest.raises(DimensionalityError):
        engine.start(np.zeros(clustered.dim + 1))


def test_tiny_dataset_finishes_without_views():
    points = np.random.default_rng(0).normal(size=(2, 6))
    dataset = Dataset(points=points, name="tiny")
    engine = SearchEngine(dataset, SearchConfig(support=5))
    outcome = engine.start(points[0])
    assert isinstance(outcome, SearchResult)
    assert outcome.reason == TerminationReason.EXHAUSTED
    assert engine.finished


def test_precomputation_shared_across_engines(clustered):
    shared = DatasetPrecomputation(clustered)
    qi = int(clustered.cluster_indices(0)[0])
    for structural in (True, False):
        result = drive(
            SearchEngine(
                clustered,
                CONFIG,
                precomputed=shared,
                structural_spans=structural,
            ),
            clustered.points[qi],
            OracleUser(clustered, qi),
        )
        cold = drive(
            SearchEngine(clustered, CONFIG),
            clustered.points[qi],
            OracleUser(clustered, qi),
        )
        assert np.array_equal(result.probabilities, cold.probabilities)
        assert np.array_equal(result.neighbor_indices, cold.neighbor_indices)


def test_precomputation_dataset_mismatch(clustered, small_uniform):
    shared = DatasetPrecomputation(small_uniform)
    with pytest.raises(ConfigurationError):
        SearchEngine(clustered, CONFIG, precomputed=shared)


def test_precomputation_full_live_is_read_only(clustered):
    shared = DatasetPrecomputation(clustered)
    assert shared.full_live.size == clustered.size
    with pytest.raises(ValueError):
        shared.full_live[0] = 7
    # points_for the full set reuses the dataset array (no copy)...
    full = shared.points_for(shared.full_live)
    assert np.shares_memory(full, shared.points_for(shared.full_live))
    # ...while a pruned set gets a fresh slice with identical values.
    subset = shared.points_for(np.arange(5))
    assert np.array_equal(subset, clustered.points[:5])
    # Lazy global statistics are cached on first use.
    assert shared.axis_variance() is shared.axis_variance()
    assert shared.covariance() is shared.covariance()


def test_close_is_idempotent(clustered):
    engine = SearchEngine(clustered, CONFIG)
    engine.start(clustered.points[0])
    engine.close()
    engine.close()
