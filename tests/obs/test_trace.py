"""Tests for the span tracer: nesting, timing, no-op path, decorator."""

from __future__ import annotations

import time

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceReport,
    Tracer,
    current_tracer,
    finish_trace,
    span,
    start_trace,
    traced,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Never leak an active tracer between tests."""
    finish_trace()
    yield
    finish_trace()


class TestNesting:
    def test_children_nest_under_parent(self):
        tracer = start_trace()
        with span("outer"):
            with span("inner.a"):
                pass
            with span("inner.b"):
                with span("leaf"):
                    pass
        report = finish_trace()
        assert len(report.roots) == 1
        outer = report.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert tracer.report().roots == report.roots

    def test_sequential_roots(self):
        start_trace()
        with span("first"):
            pass
        with span("second"):
            pass
        report = finish_trace()
        assert [r.name for r in report.roots] == ["first", "second"]

    def test_nested_timing_is_consistent(self):
        start_trace()
        with span("outer"):
            time.sleep(0.005)
            with span("inner"):
                time.sleep(0.01)
            time.sleep(0.005)
        report = finish_trace()
        outer = report.roots[0]
        inner = outer.children[0]
        assert inner.wall >= 0.009
        assert outer.wall >= inner.wall + 0.008
        # Child interval sits inside the parent interval.
        assert outer.start_wall <= inner.start_wall
        assert inner.end_wall <= outer.end_wall
        # Self time excludes the child.
        assert outer.self_wall == pytest.approx(outer.wall - inner.wall)

    def test_exception_closes_span_and_tags_error(self):
        start_trace()
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("no")
        report = finish_trace()
        boom = report.roots[0]
        assert boom.end_wall >= boom.start_wall
        assert boom.attributes["error"] == "ValueError"


class TestAttributes:
    def test_call_and_set_attributes_merge(self):
        start_trace()
        with span("s", a=1) as s:
            s.set(b=2)
            s.set(a=3)
        report = finish_trace()
        assert report.roots[0].attributes == {"a": 3, "b": 2}

    def test_cpu_clock_recorded(self):
        start_trace()
        with span("busy"):
            sum(i * i for i in range(50_000))
        report = finish_trace()
        busy = report.roots[0]
        assert busy.cpu > 0
        assert busy.end_cpu >= busy.start_cpu


class TestNoOpPath:
    def test_disabled_span_is_shared_singleton(self):
        assert not tracing_enabled()
        s1 = span("anything", k=1)
        s2 = span("else")
        assert s1 is NULL_SPAN
        assert s2 is NULL_SPAN
        with s1 as inner:
            assert inner is NULL_SPAN
            inner.set(x=2)  # no-op, no error

    def test_no_tracer_by_default(self):
        assert current_tracer() is None
        assert finish_trace() is None

    def test_disabled_span_is_cheap(self):
        """Disabled path stays well under 10 µs per call."""
        n = 20_000
        start = time.perf_counter()
        for _ in range(n):
            with span("noop"):
                pass
        per_call = (time.perf_counter() - start) / n
        assert per_call < 1e-5


class TestDecorator:
    def test_traced_records_span_when_enabled(self):
        @traced("math.double")
        def double(x):
            return 2 * x

        start_trace()
        assert double(21) == 42
        report = finish_trace()
        assert [r.name for r in report.roots] == ["math.double"]

    def test_traced_is_transparent_when_disabled(self):
        @traced()
        def triple(x):
            return 3 * x

        assert triple(2) == 6
        assert triple.__name__ == "triple"

    def test_traced_default_name_is_qualified(self):
        @traced()
        def f():
            return None

        start_trace()
        f()
        report = finish_trace()
        assert report.roots[0].name.endswith("f")


class TestReport:
    def test_find_and_span_names(self):
        start_trace()
        with span("a"):
            with span("b"):
                pass
            with span("b"):
                pass
        report = finish_trace()
        assert len(report.find("b")) == 2
        assert report.span_names() == ["a", "b"]

    def test_aggregate(self):
        start_trace()
        with span("x"):
            with span("y"):
                pass
        with span("y"):
            pass
        report = finish_trace()
        agg = report.aggregate()
        assert agg["y"]["count"] == 2
        assert agg["x"]["count"] == 1
        assert agg["x"]["wall_mean"] == pytest.approx(agg["x"]["wall_total"])

    def test_metadata_round_trip(self):
        start_trace(workload="unit")
        with span("a"):
            pass
        report = finish_trace(extra=1)
        assert report.metadata == {"workload": "unit", "extra": 1}

    def test_total_wall_sums_roots(self):
        report = TraceReport(
            roots=(
                Span(name="a", start_wall=0.0, end_wall=1.5),
                Span(name="b", start_wall=2.0, end_wall=2.25),
            )
        )
        assert report.total_wall == pytest.approx(1.75)


class TestActivation:
    def test_activate_restores_previous(self):
        outer = Tracer()
        inner = Tracer()
        with outer.activate():
            assert current_tracer() is outer
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None
