"""Labeled metric families: encoding, cardinality bounds, exposition."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.labels import (
    DEFAULT_MAX_SERIES,
    OVERFLOW_VALUE,
    LabeledCounter,
    LabeledGauge,
    LabeledHistogram,
    encode_labels,
    parse_labeled_name,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.openmetrics import render_openmetrics


class TestEncoding:
    def test_empty_labels_is_plain_name(self):
        assert encode_labels("service.requests", {}) == "service.requests"

    def test_keys_sorted_and_quoted(self):
        encoded = encode_labels(
            "service.requests.by_route",
            {"status": "2xx", "route": "/sessions/{id}/decision"},
        )
        assert encoded == (
            'service.requests.by_route{route="/sessions/{id}/decision",'
            'status="2xx"}'
        )

    def test_braces_in_metric_name_rejected(self):
        with pytest.raises(ValueError):
            encode_labels("bad{name}", {"route": "/x"})

    def test_round_trip_with_escapes(self):
        labels = {"route": 'a\\b"c\nd', "status": "5xx"}
        base, parsed = parse_labeled_name(encode_labels("m", labels))
        assert base == "m"
        assert parsed == labels

    @given(
        st.dictionaries(
            st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True),
            st.text(min_size=0, max_size=12),
            min_size=1,
            max_size=4,
        )
    )
    def test_round_trip_property(self, labels):
        base, parsed = parse_labeled_name(encode_labels("fam.ily", labels))
        assert base == "fam.ily"
        assert parsed == labels

    @pytest.mark.parametrize(
        "name",
        [
            "plain.name",
            "trailing.brace}",
            "{leading.brace}",
            'not.ours{key=unquoted}',
            'not.ours{0bad="v"}',
            'not.ours{k="unterminated}',
        ],
    )
    def test_non_matching_names_pass_through(self, name):
        base, labels = parse_labeled_name(name)
        assert (base, labels) == (name, {})


class TestFamilies:
    def test_child_types(self):
        registry = MetricsRegistry()
        assert isinstance(
            LabeledCounter("c", ("a",), registry=registry).labels(a="1"),
            Counter,
        )
        assert isinstance(
            LabeledGauge("g", ("a",), registry=registry).labels(a="1"),
            Gauge,
        )
        assert isinstance(
            LabeledHistogram("h", ("a",), registry=registry).labels(a="1"),
            Histogram,
        )

    def test_same_labels_same_child(self):
        registry = MetricsRegistry()
        family = LabeledCounter("c", ("route",), registry=registry)
        assert family.labels(route="/x") is family.labels(route="/x")
        assert family.series_count == 1

    def test_label_set_mismatch_rejected(self):
        family = LabeledCounter(
            "c", ("route", "status"), registry=MetricsRegistry()
        )
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(route="/x")
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(route="/x", status="2xx", extra="no")

    @pytest.mark.parametrize(
        "label_names", [(), ("dup", "dup"), ("0bad",), ("with space",)]
    )
    def test_bad_label_names_rejected(self, label_names):
        with pytest.raises(ValueError):
            LabeledCounter("c", label_names, registry=MetricsRegistry())

    def test_overflow_collapses_not_grows(self):
        registry = MetricsRegistry()
        family = LabeledCounter(
            "c", ("route",), max_series=3, registry=registry
        )
        for i in range(10):
            family.labels(route=f"/path-{i}").inc()
        # 3 real series minted, then the 4th slot becomes the overflow
        # series every later label set lands in.
        assert family.series_count == 4
        assert family.overflowed == 7
        overflow = encode_labels("c", {"route": OVERFLOW_VALUE})
        assert registry.get(overflow).value == 7
        # Totals conserved across the family.
        total = sum(
            registry.get(name).value
            for name in registry.names()
            if parse_labeled_name(name)[0] == "c"
        )
        assert total == 10

    def test_default_bound(self):
        family = LabeledCounter("c", ("k",), registry=MetricsRegistry())
        assert family._max_series == DEFAULT_MAX_SERIES


class TestExposition:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        counts = LabeledCounter(
            "service.requests.by_route",
            ("route", "status"),
            registry=registry,
        )
        counts.labels(route="/sessions", status="2xx").inc(5)
        counts.labels(route="/sessions/{id}/decision", status="2xx").inc(40)
        counts.labels(route="/sessions", status="4xx").inc(2)
        seconds = LabeledHistogram(
            "service.request.seconds.by_route",
            ("route", "status"),
            buckets=(0.1, 1.0),
            registry=registry,
        )
        seconds.labels(route="/sessions", status="2xx").observe(0.05)
        seconds.labels(route="/sessions", status="2xx").observe(2.0)
        return registry

    def test_labels_become_prometheus_labels(self):
        text = render_openmetrics(self._registry())
        assert (
            'repro_service_requests_by_route_total{route="/sessions",'
            'status="2xx"} 5' in text
        )
        assert (
            'repro_service_requests_by_route_total{'
            'route="/sessions/{id}/decision",status="2xx"} 40' in text
        )
        # One HELP/TYPE block per family, not per series.
        assert text.count("# TYPE repro_service_requests_by_route") == 1

    def test_histogram_members_render_buckets(self):
        text = render_openmetrics(self._registry())
        assert (
            'repro_service_request_seconds_by_route_bucket{'
            'route="/sessions",status="2xx",le="0.1"} 1' in text
        )
        assert (
            'repro_service_request_seconds_by_route_count{'
            'route="/sessions",status="2xx"} 2' in text
        )

    def test_json_snapshot_round_trips(self):
        registry = self._registry()
        decoded = json.loads(json.dumps(registry.to_dict()))
        rebuilt = MetricsRegistry()
        for name, snap in decoded["metrics"].items():
            if snap["type"] == "counter":
                rebuilt.counter(name).inc(snap["value"])
            elif snap["type"] == "gauge":
                rebuilt.gauge(name).set(snap["value"])
        # Every encoded name survives JSON verbatim and re-parses.
        for name in decoded["metrics"]:
            base, labels = parse_labeled_name(name)
            if labels:
                assert encode_labels(base, labels) == name
        assert (
            'repro_service_requests_by_route_total{route="/sessions",'
            'status="2xx"} 5' in render_openmetrics(rebuilt)
        )
