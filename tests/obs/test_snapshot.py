"""Cross-process telemetry snapshots: capture, pickling, and merging.

The :class:`~repro.obs.snapshot.TelemetryCollector` brackets one worker
task and captures every instrument delta, log record, and (when traced)
span tree into a picklable :class:`~repro.obs.snapshot.TelemetrySnapshot`
that the parent folds back via ``MetricsRegistry.merge_snapshot`` and
``Tracer.adopt``.  These tests exercise the whole shipping pipeline
in-process (the real spawn-pool path is covered by
``tests/core/test_parallel.py``).
"""

from __future__ import annotations

import logging
import os
import pickle

import pytest

from repro.obs.export import span_from_dict
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, counter_values
from repro.obs.snapshot import (
    MAX_SHIPPED_LOG_MESSAGES,
    TelemetryCollector,
    TelemetrySnapshot,
    replay_worker_logs,
)
from repro.obs.trace import Tracer, finish_trace, span


@pytest.fixture(autouse=True)
def _clean_tracer():
    finish_trace()
    yield
    finish_trace()


def _registry_with_activity() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("work.items").inc(3)
    h = registry.histogram("work.seconds", buckets=(1.0, 2.0, 4.0))
    h.observe(0.5)
    registry.gauge("work.depth").set(7)
    return registry


class TestCollectorCapture:
    def test_counter_deltas_only(self):
        registry = _registry_with_activity()
        collector = TelemetryCollector(registry=registry)
        collector.begin()
        registry.counter("work.items").inc(2)
        registry.counter("untouched").inc(0)
        snapshot = collector.finish()
        assert snapshot.counters == {"work.items": 2.0}

    def test_histogram_delta_carries_buckets_and_extremes(self):
        registry = _registry_with_activity()
        collector = TelemetryCollector(registry=registry)
        collector.begin()
        h = registry.histogram("work.seconds", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        h.observe(100.0)  # overflow bucket
        snapshot = collector.finish()
        delta = snapshot.histograms["work.seconds"]
        assert delta.buckets == (1.0, 2.0, 4.0)
        assert delta.counts == (0, 1, 0, 1)
        assert delta.count == 2
        assert delta.sum == pytest.approx(101.5)
        assert delta.max == pytest.approx(100.0)

    def test_untouched_histogram_not_shipped(self):
        registry = _registry_with_activity()
        collector = TelemetryCollector(registry=registry)
        collector.begin()
        snapshot = collector.finish()
        assert snapshot.histograms == {}
        assert snapshot.is_empty()

    def test_gauge_last_write(self):
        registry = _registry_with_activity()
        collector = TelemetryCollector(registry=registry)
        collector.begin()
        registry.gauge("work.depth").set(11)
        registry.gauge("work.depth").set(4)
        snapshot = collector.finish()
        assert snapshot.gauges == {"work.depth": 4.0}

    def test_unchanged_gauge_not_shipped(self):
        registry = _registry_with_activity()
        collector = TelemetryCollector(registry=registry)
        collector.begin()
        registry.gauge("work.depth").set(7)  # same reading
        snapshot = collector.finish()
        assert snapshot.gauges == {}

    def test_log_counts_and_warning_messages(self, caplog):
        collector = TelemetryCollector(registry=MetricsRegistry())
        collector.begin()
        log = get_logger("core.test")
        with caplog.at_level(logging.DEBUG, logger="repro.core.test"):
            log.debug("quiet")
            log.warning("loud %d", 1)
        snapshot = collector.finish()
        assert snapshot.log_counts["WARNING:repro.core.test"] == 1
        assert snapshot.log_counts["DEBUG:repro.core.test"] == 1
        # Only WARNING+ text is shipped verbatim.
        assert snapshot.log_messages == ("WARNING repro.core.test: loud 1",)

    def test_shipped_messages_are_bounded(self):
        collector = TelemetryCollector(registry=MetricsRegistry())
        collector.begin()
        log = get_logger("core.test")
        for index in range(MAX_SHIPPED_LOG_MESSAGES + 5):
            log.warning("message %d", index)
        snapshot = collector.finish()
        assert len(snapshot.log_messages) == MAX_SHIPPED_LOG_MESSAGES
        # Counts stay complete even when verbatim text is truncated.
        assert snapshot.log_counts["WARNING:repro.core.test"] == (
            MAX_SHIPPED_LOG_MESSAGES + 5
        )

    def test_trace_capture_when_enabled(self):
        collector = TelemetryCollector(registry=MetricsRegistry(), trace=True)
        collector.begin()
        with span("task.outer", n=1):
            with span("task.inner"):
                pass
        snapshot = collector.finish()
        roots = snapshot.spans()
        assert [root.name for root in roots] == ["task.outer"]
        assert [c.name for c in roots[0].children] == ["task.inner"]
        assert snapshot.worker_pid == os.getpid()

    def test_no_trace_capture_by_default(self):
        collector = TelemetryCollector(registry=MetricsRegistry())
        collector.begin()
        with span("task.outer"):
            pass
        snapshot = collector.finish()
        assert snapshot.trace_roots == ()

    def test_begin_twice_rejected(self):
        collector = TelemetryCollector(registry=MetricsRegistry())
        collector.begin()
        with pytest.raises(RuntimeError):
            collector.begin()
        collector.finish()

    def test_finish_before_begin_rejected(self):
        with pytest.raises(RuntimeError):
            TelemetryCollector(registry=MetricsRegistry()).finish()

    def test_capture_handler_removed_on_finish(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        collector = TelemetryCollector(registry=MetricsRegistry())
        collector.begin()
        collector.finish()
        assert list(root.handlers) == before


class TestSnapshotPickling:
    def test_round_trip(self):
        registry = _registry_with_activity()
        collector = TelemetryCollector(registry=registry, trace=True)
        collector.begin()
        registry.counter("work.items").inc(1)
        registry.histogram("work.seconds", buckets=(1.0, 2.0, 4.0)).observe(3)
        registry.gauge("work.depth").set(9)
        get_logger("core.test").warning("shipped")
        with span("task", n=2):
            pass
        snapshot = collector.finish()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot
        assert clone.spans()[0].name == "task"


class TestMergeSnapshot:
    def test_all_instrument_kinds_merge(self):
        worker = _registry_with_activity()
        collector = TelemetryCollector(registry=worker)
        collector.begin()
        worker.counter("work.items").inc(2)
        worker.histogram("work.seconds", buckets=(1.0, 2.0, 4.0)).observe(1.5)
        worker.gauge("work.depth").set(12)
        snapshot = collector.finish()

        parent = MetricsRegistry()
        parent.counter("work.items").inc(10)
        parent.merge_snapshot(snapshot)
        assert parent.counter("work.items").value == pytest.approx(12)
        merged = parent.get("work.seconds")
        assert merged is not None
        assert merged.count == 1
        assert merged.counts == (0, 1, 0, 0)
        # Extremes are the worker's *lifetime* min/max (idempotent
        # folds), so the pre-task 0.5 observation is reflected too.
        assert merged.min == pytest.approx(0.5)
        assert parent.gauge("work.depth").value == pytest.approx(12)

    def test_merge_is_additive_across_tasks(self):
        parent = MetricsRegistry()
        for _ in range(3):
            worker = MetricsRegistry()
            collector = TelemetryCollector(registry=worker)
            collector.begin()
            worker.histogram("h", buckets=(1.0,)).observe(0.5)
            parent.merge_snapshot(collector.finish())
        assert parent.get("h").count == 3

    def test_bucket_layout_mismatch_skipped_with_warning(self, caplog):
        worker = MetricsRegistry()
        collector = TelemetryCollector(registry=worker)
        collector.begin()
        worker.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = collector.finish()

        parent = MetricsRegistry()
        parent.histogram("h", buckets=(10.0, 20.0)).observe(15.0)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            parent.merge_snapshot(snapshot)
        assert "bucket bounds" in caplog.text
        # The incompatible delta was dropped, not misfiled.
        assert parent.get("h").count == 1

    def test_counter_only_snapshot(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(TelemetrySnapshot(counters={"c": 2.0}))
        assert parent.counter("c").value == pytest.approx(2.0)


class TestReplayWorkerLogs:
    def test_messages_resurface_with_origin(self, caplog):
        snapshot = TelemetrySnapshot(
            log_messages=("WARNING repro.core: boom",), worker_pid=1234
        )
        with caplog.at_level(logging.WARNING, logger="repro.obs.worker"):
            replay_worker_logs(snapshot, lane=2)
        assert "worker lane=2 pid=1234" in caplog.text
        assert "boom" in caplog.text

    def test_empty_snapshot_is_silent(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs.worker"):
            replay_worker_logs(TelemetrySnapshot())
        assert caplog.text == ""


class TestLaneMergeAndAdopt:
    def _completed_tree(self) -> "object":
        worker = Tracer()
        with worker.activate():
            with span("worker.task"):
                with span("worker.inner"):
                    pass
        return worker.report().roots[0]

    def test_adopt_relanes_whole_subtree(self):
        parent = Tracer()
        with parent.activate():
            with span("parent.run"):
                pass
        parent.adopt(self._completed_tree(), lane=3)
        report = parent.report()
        assert report.lanes() == [0, 3]
        adopted = report.find("worker.inner")[0]
        assert adopted.lane == 3

    def test_merge_reports_records_lanes(self):
        a = Tracer()
        with a.activate():
            with span("parent.run"):
                pass
        b = Tracer()
        with b.activate():
            with span("worker.task"):
                pass
        merged = a.report().merge(b.report(), lane=1)
        assert merged.lanes() == [0, 1]
        assert merged.metadata["lanes"] == [0, 1]
        assert {root.name for root in merged.roots} == {
            "parent.run",
            "worker.task",
        }

    def test_snapshot_spans_survive_serialization_lane(self):
        root = self._completed_tree()
        from repro.obs.export import span_to_dict

        payload = span_to_dict(root)
        rebuilt = span_from_dict(payload)
        parent = Tracer()
        parent.adopt(rebuilt, lane=5)
        assert parent.report().lanes() == [5]


def test_counter_values_still_supported():
    """The pre-snapshot counter shipping API keeps working."""
    values = counter_values()
    assert isinstance(values, dict)
