"""Tests for the process-wide session registry."""

from __future__ import annotations

import numpy as np

from repro.core.config import SearchConfig
from repro.core.engine import SearchEngine
from repro.core.search import drive
from repro.interaction.oracle import OracleUser
from repro.obs.registry import SESSIONS, SessionRegistry


def _register(registry, **overrides):
    kwargs = {"dataset": "ds", "n_points": 100, "dim": 10}
    kwargs.update(overrides)
    return registry.register(**kwargs)


class TestTransitions:
    def test_register_is_live(self):
        registry = SessionRegistry()
        sid = _register(registry)
        assert sid.startswith("s")
        assert registry.counts() == {"live": 1, "suspended": 0, "finished": 0, "failed": 0}

    def test_view_and_decision_track_progress(self):
        registry = SessionRegistry()
        sid = _register(registry)
        registry.note_view(sid, step=1)
        registry.note_decision(sid)
        registry.note_view(sid, step=2)
        (info,) = registry.snapshot()
        assert info["views"] == 2
        assert info["steps"] == 2
        assert info["state"] == "live"

    def test_suspend_then_finish(self):
        registry = SessionRegistry()
        sid = _register(registry)
        registry.suspend(sid)
        assert registry.counts()["suspended"] == 1
        registry.finish(sid, reason="top_set_stable")
        counts = registry.counts()
        assert counts == {"live": 0, "suspended": 0, "finished": 1, "failed": 0}
        (info,) = registry.snapshot()
        assert info["reason"] == "top_set_stable"

    def test_finish_is_terminal(self):
        registry = SessionRegistry()
        sid = _register(registry)
        registry.finish(sid, reason="done")
        registry.note_view(sid, step=9)  # late report: ignored
        registry.suspend(sid)
        (info,) = registry.snapshot()
        assert info["state"] == "finished" and info["views"] == 0

    def test_unknown_ids_are_noops(self):
        registry = SessionRegistry()
        registry.note_view("s999999", step=1)
        registry.note_decision("s999999")
        registry.suspend("s999999")
        registry.finish("s999999", reason="x")
        assert registry.counts() == {"live": 0, "suspended": 0, "finished": 0, "failed": 0}

    def test_reset_forgets_everything(self):
        registry = SessionRegistry()
        _register(registry)
        registry.reset()
        assert registry.counts() == {"live": 0, "suspended": 0, "finished": 0, "failed": 0}
        assert registry.snapshot() == []


class TestFailAndForget:
    def test_fail_is_terminal_and_counted(self):
        registry = SessionRegistry()
        sid = _register(registry)
        registry.fail(sid, reason="checkpoint_corrupt")
        counts = registry.counts()
        assert counts == {"live": 0, "suspended": 0, "finished": 0, "failed": 1}
        registry.note_view(sid, step=3)  # late report: ignored
        registry.finish(sid, reason="done")  # cannot un-fail
        (info,) = registry.snapshot()
        assert info["state"] == "failed"
        assert info["reason"] == "checkpoint_corrupt"

    def test_failed_sessions_share_bounded_history(self):
        registry = SessionRegistry(max_finished=2)
        sids = [_register(registry) for _ in range(3)]
        registry.fail(sids[0], reason="x")
        registry.finish(sids[1], reason="done")
        registry.fail(sids[2], reason="y")
        retained = {info["session_id"] for info in registry.snapshot()}
        assert retained == set(sids[1:])

    def test_forget_drops_without_counting(self):
        from repro.obs.metrics import counter

        registry = SessionRegistry()
        sid = _register(registry)
        finished_before = counter("sessions.finished").value
        failed_before = counter("sessions.failed").value
        registry.forget(sid)
        assert registry.snapshot() == []
        assert counter("sessions.finished").value == finished_before
        assert counter("sessions.failed").value == failed_before
        registry.forget("s999999")  # unknown id: no-op

    def test_openmetrics_excludes_failed(self):
        registry = SessionRegistry()
        live = _register(registry)
        lost = _register(registry)
        registry.fail(lost, reason="gone")
        text = "\n".join(registry.openmetrics_lines())
        assert f'session="{live}"' in text
        assert f'session="{lost}"' not in text


class TestEviction:
    def test_finished_history_is_bounded_fifo(self):
        registry = SessionRegistry(max_finished=2)
        sids = [_register(registry) for _ in range(3)]
        for sid in sids:
            registry.finish(sid, reason="done")
        retained = {info["session_id"] for info in registry.snapshot()}
        assert retained == set(sids[1:])  # oldest finished evicted

    def test_live_sessions_never_evicted(self):
        registry = SessionRegistry(max_finished=1)
        live = _register(registry)
        for _ in range(3):
            registry.finish(_register(registry), reason="done")
        retained = {info["session_id"] for info in registry.snapshot()}
        assert live in retained


class TestSnapshotAndExport:
    def test_snapshot_is_newest_first(self):
        registry = SessionRegistry()
        first = _register(registry)
        second = _register(registry)
        order = [info["session_id"] for info in registry.snapshot()]
        assert order == [second, first]

    def test_snapshot_has_derived_ages(self):
        registry = SessionRegistry()
        _register(registry)
        (info,) = registry.snapshot()
        assert info["age_seconds"] >= 0.0
        assert info["idle_seconds"] >= 0.0

    def test_openmetrics_excludes_finished(self):
        registry = SessionRegistry()
        live = _register(registry)
        done = _register(registry)
        registry.finish(done, reason="done")
        text = "\n".join(registry.openmetrics_lines())
        assert f'session="{live}"' in text
        assert f'session="{done}"' not in text
        assert "# TYPE repro_session_steps gauge" in text
        assert "repro_session_age_seconds" in text

    def test_openmetrics_empty_when_idle(self):
        assert SessionRegistry().openmetrics_lines() == []


class TestEngineIntegration:
    def test_engine_lifecycle_reports_to_singleton(self, small_clustered):
        dataset = small_clustered.dataset
        qi = int(dataset.cluster_indices(0)[0])
        config = SearchConfig(
            support=15,
            grid_resolution=30,
            min_major_iterations=2,
            max_major_iterations=2,
            projection_restarts=2,
        )
        from repro.obs.metrics import counter

        # The cumulative counter, not counts()["finished"]: the retained
        # history is FIFO-capped, and a full-suite run finishes far more
        # than max_finished sessions before this test executes.
        before = counter("sessions.finished").value
        engine = SearchEngine(dataset, config)
        result = drive(
            engine, dataset.points[qi], OracleUser(dataset, qi)
        )
        assert np.asarray(result.neighbor_indices).size > 0
        assert engine.session_id is not None
        assert counter("sessions.finished").value == before + 1
        entry = next(
            info
            for info in SESSIONS.snapshot()
            if info["session_id"] == engine.session_id
        )
        assert entry["state"] == "finished"
        assert entry["views"] == result.session.total_views

    def test_abandoned_engine_is_suspended(self, small_clustered):
        dataset = small_clustered.dataset
        qi = int(dataset.cluster_indices(0)[0])
        engine = SearchEngine(dataset, SearchConfig(support=15))
        engine.start(dataset.points[qi])
        engine.close()
        entry = next(
            info
            for info in SESSIONS.snapshot()
            if info["session_id"] == engine.session_id
        )
        assert entry["state"] == "suspended"
