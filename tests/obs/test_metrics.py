"""Tests for the metrics registry: counters, gauges, histogram buckets."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_monotonic_increment(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("c")
        c.inc(4)
        assert c.snapshot() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == pytest.approx(12)

    def test_can_go_negative(self):
        g = Gauge("g")
        g.dec(2)
        assert g.value == pytest.approx(-2)


class TestHistogramBuckets:
    def test_value_on_bound_lands_in_that_bucket(self):
        """le-semantics: an observation equal to a bound counts in it."""
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(4.0)
        assert h.counts == (1, 1, 1, 0)

    def test_overflow_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(100.0)
        assert h.counts == (0, 0, 1)

    def test_below_first_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.0)
        h.observe(0.5)
        assert h.counts == (2, 0, 0)

    def test_cumulative_counts(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.7, 3.0, 9.0):
            h.observe(value)
        assert h.cumulative_counts() == (1, 3, 4, 5)

    def test_count_sum_mean_min_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.25)
        h.observe(3.0)
        assert h.count == 2
        assert h.sum == pytest.approx(3.25)
        assert h.mean == pytest.approx(1.625)
        assert h.min == pytest.approx(0.25)
        assert h.max == pytest.approx(3.0)

    def test_empty_histogram_stats(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.count == 0
        assert h.mean == 0.0
        assert math.isinf(h.min) and h.min > 0
        assert math.isinf(h.max) and h.max < 0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_quantile(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            h.observe(value)
        # Linear interpolation inside the covering bucket, with the
        # bucket edges sharpened by the observed min/max: rank 2 of 4
        # lands at the top of the (1, 2] bucket's covered mass.
        assert h.quantile(0.5) == pytest.approx(1.5, abs=1.0)
        # q=0 / q=1 are exact (observed extremes).
        assert h.quantile(0.0) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(3.0)

    def test_quantile_empty_is_nan(self):
        h = Histogram("h", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))

    def test_quantile_overflow_reports_observed_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == pytest.approx(50.0)

    def test_quantile_out_of_range_rejected(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_snapshot(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.5)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(1.5)
        assert snap["buckets"] == [1.0, 2.0]
        assert snap["counts"] == [0, 1, 0]
        assert snap["min"] == pytest.approx(1.5)

    def test_empty_snapshot_uses_none_extremes(self):
        snap = Histogram("h", buckets=(1.0,)).snapshot()
        assert snap["min"] is None and snap["max"] is None

    def test_default_bucket_sets_are_sorted(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(DEFAULT_SECONDS_BUCKETS)
        assert list(DEFAULT_SIZE_BUCKETS) == sorted(DEFAULT_SIZE_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_histogram_buckets_fixed_at_creation(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0))
        again = reg.histogram("h", buckets=(5.0,))
        assert again is h
        assert again.buckets == (1.0, 2.0)

    def test_reset_zeroes_but_keeps_registered(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        h = reg.histogram("h", buckets=(1.0,))
        c.inc(3)
        h.observe(0.5)
        reg.reset()
        assert reg.counter("a") is c
        assert c.value == 0
        assert h.count == 0
        assert h.counts == (0, 0)

    def test_clear_forgets_metrics(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        reg.clear()
        assert reg.get("a") is None
        assert reg.counter("a") is not c

    def test_get_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        assert reg.names() == []

    def test_snapshot_covers_all_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert set(snap) == {"c", "g", "h"}
        assert snap["c"]["value"] == 1
        assert snap["g"]["value"] == 2
        assert snap["h"]["count"] == 1


class TestThreadSafety:
    def test_concurrent_updates_lose_nothing(self):
        """Thread-safety smoke: no lost updates under contention."""
        reg = MetricsRegistry()
        c = reg.counter("hits")
        h = reg.histogram("sizes", buckets=(10.0, 100.0))
        n_threads, n_iter = 8, 2_000

        def work():
            for i in range(n_iter):
                c.inc()
                h.observe(float(i % 150))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_iter
        assert h.count == n_threads * n_iter
        assert sum(h.counts) == n_threads * n_iter

    def test_concurrent_get_or_create_single_instance(self):
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            seen.append(reg.counter("shared"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(instrument is seen[0] for instrument in seen)
