"""Tests for the trace exporters: JSON round trip, Chrome format, flame."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    ascii_flame,
    dict_to_trace,
    load_trace,
    save_chrome_trace,
    save_trace,
    to_chrome_trace,
    trace_to_dict,
)
from repro.obs.trace import Span, TraceReport, Tracer, finish_trace


@pytest.fixture(autouse=True)
def _clean_tracer():
    finish_trace()
    yield
    finish_trace()


def _sample_report():
    """A small trace with nesting, attributes, and two roots."""
    tracer = Tracer()
    with tracer.activate():
        with tracer.span("search.run", n=100) as run:
            run.set(support=10)
            with tracer.span("search.major", index=0):
                with tracer.span("kde.grid", resolution=32):
                    pass
        with tracer.span("search.prune"):
            pass
    return tracer.report(command="test")


class TestJsonRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        report = _sample_report()
        payload = trace_to_dict(report)
        rebuilt = dict_to_trace(payload)
        assert trace_to_dict(rebuilt) == payload

    def test_payload_is_json_serializable(self):
        payload = trace_to_dict(_sample_report())
        decoded = json.loads(json.dumps(payload))
        assert decoded["schema_version"] == TRACE_SCHEMA_VERSION
        assert decoded["metadata"] == {"command": "test"}

    def test_structure_preserved(self):
        rebuilt = dict_to_trace(trace_to_dict(_sample_report()))
        assert [r.name for r in rebuilt.roots] == ["search.run", "search.prune"]
        run = rebuilt.roots[0]
        assert run.attributes == {"n": 100, "support": 10}
        assert [c.name for c in run.children] == ["search.major"]
        assert run.children[0].children[0].name == "kde.grid"

    def test_save_and_load(self, tmp_path):
        report = _sample_report()
        path = save_trace(report, tmp_path / "sub" / "trace.json")
        assert path.exists()
        loaded = load_trace(path)
        assert trace_to_dict(loaded) == trace_to_dict(report)

    def test_saved_file_is_valid_json(self, tmp_path):
        path = save_trace(_sample_report(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["roots"][0]["name"] == "search.run"

    def test_missing_optional_fields_tolerated(self):
        report = dict_to_trace(
            {
                "schema_version": TRACE_SCHEMA_VERSION,
                "roots": [
                    {
                        "name": "a",
                        "start_wall": 0.0,
                        "end_wall": 1.0,
                        "start_cpu": 0.0,
                        "end_cpu": 0.5,
                    }
                ],
            }
        )
        root = report.roots[0]
        assert root.attributes == {}
        assert root.children == []
        assert report.metadata == {}


class TestChromeFormat:
    def test_one_complete_event_per_span(self):
        report = _sample_report()
        chrome = to_chrome_trace(report)
        spans = list(report.iter_spans())
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(spans)
        # Plus one process_name metadata event per lane (single-lane here).
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert [e["args"]["name"] for e in meta] == ["parent"]

    def test_timestamps_relative_and_microseconds(self):
        report = _sample_report()
        events = [
            e
            for e in to_chrome_trace(report)["traceEvents"]
            if e["ph"] == "X"
        ]
        ts = [e["ts"] for e in events]
        assert min(ts) == pytest.approx(0.0)
        by_name = {e["name"]: e for e in events}
        run = next(s for s in report.iter_spans() if s.name == "search.run")
        assert by_name["search.run"]["dur"] == pytest.approx(run.wall * 1e6)

    def test_category_is_name_prefix(self):
        events = to_chrome_trace(_sample_report())["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["kde.grid"]["cat"] == "kde"
        assert by_name["search.run"]["cat"] == "search"

    def test_attributes_become_args(self):
        events = to_chrome_trace(_sample_report())["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["kde.grid"]["args"] == {"resolution": 32}

    def test_save_chrome_trace(self, tmp_path):
        path = save_chrome_trace(_sample_report(), tmp_path / "chrome.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["otherData"] == {"command": "test"}


class TestAsciiFlame:
    def test_mentions_every_span_name(self):
        report = _sample_report()
        text = ascii_flame(report)
        for name in report.span_names():
            assert name in text

    def test_children_indented_under_parent(self):
        text = ascii_flame(_sample_report())
        lines = text.splitlines()
        run_line = next(l for l in lines if l.startswith("search.run"))
        major_line = next(l for l in lines if "search.major" in l)
        assert major_line.startswith("  ")
        assert not run_line.startswith(" ")

    def test_header_counts_spans(self):
        report = _sample_report()
        n = sum(1 for _ in report.iter_spans())
        assert f"{n} spans" in ascii_flame(report)

    def test_max_depth_truncates(self):
        tree = ascii_flame(_sample_report(), max_depth=1).split("\n\n")[0]
        assert "search.run" in tree
        assert "search.major" not in tree

    def test_attributes_rendered(self):
        assert "resolution=32" in ascii_flame(_sample_report())


# ----------------------------------------------------------------------
# Edge cases: zero-duration spans, non-finite attributes, multi-lane
# ----------------------------------------------------------------------
def _zero_duration_report():
    """A span that opened and closed within one clock tick."""
    span = Span(
        name="instant",
        start_wall=10.0,
        end_wall=10.0,
        start_cpu=1.0,
        end_cpu=1.0,
    )
    return TraceReport(roots=(span,), metadata={})


def _nonfinite_attr_report():
    span = Span(
        name="weird",
        start_wall=0.0,
        end_wall=1.0,
        attributes={
            "ratio": float("nan"),
            "bound": float("inf"),
            "neg": float("-inf"),
            "nested": {"deep": float("nan"), "fine": 3},
            "listed": [1.0, float("inf")],
            "ok": 2.5,
        },
    )
    return TraceReport(roots=(span,), metadata={"noise": float("nan")})


def _multi_lane_report():
    parent = Tracer()
    with parent.activate():
        with parent.span("batch.parallel.run", workers=2):
            pass
    for lane in (1, 2):
        worker = Tracer()
        with worker.activate():
            with worker.span("engine.step"):
                with worker.span("kde.grid"):
                    pass
        for root in worker.report().roots:
            parent.adopt(root, lane=lane)
    return parent.report(command="test")


class TestZeroDurationSpans:
    def test_ascii_flame_handles_zero_total(self):
        text = ascii_flame(_zero_duration_report())
        assert "instant" in text
        assert "0.00 ms" in text

    def test_chrome_event_has_zero_duration(self):
        events = [
            e
            for e in to_chrome_trace(_zero_duration_report())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert events[0]["dur"] == 0.0
        assert events[0]["ts"] == 0.0

    def test_json_round_trip(self):
        payload = trace_to_dict(_zero_duration_report())
        assert trace_to_dict(dict_to_trace(payload)) == payload


class TestNonFiniteAttributes:
    def test_chrome_trace_is_strict_json(self, tmp_path):
        path = save_chrome_trace(
            _nonfinite_attr_report(), tmp_path / "chrome.json"
        )
        # Strict parsing: reject nan/inf literals outright.
        payload = json.loads(
            path.read_text(), parse_constant=lambda c: pytest.fail(c)
        )
        args = next(
            e for e in payload["traceEvents"] if e["ph"] == "X"
        )["args"]
        assert args["ratio"] == "nan"
        assert args["bound"] == "inf"
        assert args["neg"] == "-inf"
        assert args["nested"] == {"deep": "nan", "fine": 3}
        assert args["listed"] == [1.0, "inf"]
        assert args["ok"] == 2.5

    def test_metadata_sanitized_too(self):
        chrome = to_chrome_trace(_nonfinite_attr_report())
        assert chrome["otherData"]["noise"] == "nan"

    def test_ascii_flame_does_not_crash(self):
        assert "weird" in ascii_flame(_nonfinite_attr_report())


class TestMultiLaneTrace:
    def test_lanes_present(self):
        assert _multi_lane_report().lanes() == [0, 1, 2]

    def test_json_round_trip_preserves_lanes(self):
        report = _multi_lane_report()
        payload = trace_to_dict(report)
        rebuilt = dict_to_trace(payload)
        assert rebuilt.lanes() == [0, 1, 2]
        assert trace_to_dict(rebuilt) == payload
        # Lanes survive down the tree, not just at roots.
        grids = rebuilt.find("kde.grid")
        assert sorted(s.lane for s in grids) == [1, 2]

    def test_save_load_round_trip(self, tmp_path):
        report = _multi_lane_report()
        loaded = load_trace(save_trace(report, tmp_path / "trace.json"))
        assert trace_to_dict(loaded) == trace_to_dict(report)

    def test_chrome_one_track_per_lane(self):
        chrome = to_chrome_trace(_multi_lane_report())
        meta = {
            e["pid"]: e["args"]["name"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta == {0: "parent", 1: "worker-1", 2: "worker-2"}
        pids = {e["pid"] for e in chrome["traceEvents"] if e["ph"] == "X"}
        assert pids == {0, 1, 2}

    def test_version1_archives_load_without_lanes(self):
        payload = trace_to_dict(_sample_report())
        payload["schema_version"] = 1
        for root in payload["roots"]:
            root.pop("lane", None)
        report = dict_to_trace(payload)
        assert report.lanes() == [0]
