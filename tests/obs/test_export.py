"""Tests for the trace exporters: JSON round trip, Chrome format, flame."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    ascii_flame,
    dict_to_trace,
    load_trace,
    save_chrome_trace,
    save_trace,
    to_chrome_trace,
    trace_to_dict,
)
from repro.obs.trace import Tracer, finish_trace


@pytest.fixture(autouse=True)
def _clean_tracer():
    finish_trace()
    yield
    finish_trace()


def _sample_report():
    """A small trace with nesting, attributes, and two roots."""
    tracer = Tracer()
    with tracer.activate():
        with tracer.span("search.run", n=100) as run:
            run.set(support=10)
            with tracer.span("search.major", index=0):
                with tracer.span("kde.grid", resolution=32):
                    pass
        with tracer.span("search.prune"):
            pass
    return tracer.report(command="test")


class TestJsonRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        report = _sample_report()
        payload = trace_to_dict(report)
        rebuilt = dict_to_trace(payload)
        assert trace_to_dict(rebuilt) == payload

    def test_payload_is_json_serializable(self):
        payload = trace_to_dict(_sample_report())
        decoded = json.loads(json.dumps(payload))
        assert decoded["schema_version"] == TRACE_SCHEMA_VERSION
        assert decoded["metadata"] == {"command": "test"}

    def test_structure_preserved(self):
        rebuilt = dict_to_trace(trace_to_dict(_sample_report()))
        assert [r.name for r in rebuilt.roots] == ["search.run", "search.prune"]
        run = rebuilt.roots[0]
        assert run.attributes == {"n": 100, "support": 10}
        assert [c.name for c in run.children] == ["search.major"]
        assert run.children[0].children[0].name == "kde.grid"

    def test_save_and_load(self, tmp_path):
        report = _sample_report()
        path = save_trace(report, tmp_path / "sub" / "trace.json")
        assert path.exists()
        loaded = load_trace(path)
        assert trace_to_dict(loaded) == trace_to_dict(report)

    def test_saved_file_is_valid_json(self, tmp_path):
        path = save_trace(_sample_report(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["roots"][0]["name"] == "search.run"

    def test_missing_optional_fields_tolerated(self):
        report = dict_to_trace(
            {
                "schema_version": TRACE_SCHEMA_VERSION,
                "roots": [
                    {
                        "name": "a",
                        "start_wall": 0.0,
                        "end_wall": 1.0,
                        "start_cpu": 0.0,
                        "end_cpu": 0.5,
                    }
                ],
            }
        )
        root = report.roots[0]
        assert root.attributes == {}
        assert root.children == []
        assert report.metadata == {}


class TestChromeFormat:
    def test_one_complete_event_per_span(self):
        report = _sample_report()
        chrome = to_chrome_trace(report)
        spans = list(report.iter_spans())
        assert len(chrome["traceEvents"]) == len(spans)
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_timestamps_relative_and_microseconds(self):
        report = _sample_report()
        events = to_chrome_trace(report)["traceEvents"]
        ts = [e["ts"] for e in events]
        assert min(ts) == pytest.approx(0.0)
        by_name = {e["name"]: e for e in events}
        run = next(s for s in report.iter_spans() if s.name == "search.run")
        assert by_name["search.run"]["dur"] == pytest.approx(run.wall * 1e6)

    def test_category_is_name_prefix(self):
        events = to_chrome_trace(_sample_report())["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["kde.grid"]["cat"] == "kde"
        assert by_name["search.run"]["cat"] == "search"

    def test_attributes_become_args(self):
        events = to_chrome_trace(_sample_report())["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["kde.grid"]["args"] == {"resolution": 32}

    def test_save_chrome_trace(self, tmp_path):
        path = save_chrome_trace(_sample_report(), tmp_path / "chrome.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["otherData"] == {"command": "test"}


class TestAsciiFlame:
    def test_mentions_every_span_name(self):
        report = _sample_report()
        text = ascii_flame(report)
        for name in report.span_names():
            assert name in text

    def test_children_indented_under_parent(self):
        text = ascii_flame(_sample_report())
        lines = text.splitlines()
        run_line = next(l for l in lines if l.startswith("search.run"))
        major_line = next(l for l in lines if "search.major" in l)
        assert major_line.startswith("  ")
        assert not run_line.startswith(" ")

    def test_header_counts_spans(self):
        report = _sample_report()
        n = sum(1 for _ in report.iter_spans())
        assert f"{n} spans" in ascii_flame(report)

    def test_max_depth_truncates(self):
        tree = ascii_flame(_sample_report(), max_depth=1).split("\n\n")[0]
        assert "search.run" in tree
        assert "search.major" not in tree

    def test_attributes_rendered(self):
        assert "resolution=32" in ascii_flame(_sample_report())
