"""Tests for the ``repro.*`` logging hierarchy and CLI verbosity map."""

from __future__ import annotations

import io
import logging

from repro.obs.logging import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
)


def _teardown():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_installed", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_namespaced_under_repro(self):
        assert get_logger("data").name == "repro.data"
        assert get_logger("core").parent.name == ROOT_LOGGER_NAME

    def test_empty_name_is_root(self):
        assert get_logger().name == ROOT_LOGGER_NAME
        assert get_logger(None).name == ROOT_LOGGER_NAME

    def test_already_qualified_name_passthrough(self):
        assert get_logger("repro.density").name == "repro.density"
        assert get_logger(ROOT_LOGGER_NAME).name == ROOT_LOGGER_NAME

    def test_root_has_null_handler(self):
        """Importing the library must never print 'no handlers' warnings."""
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestConfigureLogging:
    def test_verbosity_levels(self):
        try:
            assert configure_logging(0).level == logging.WARNING
            assert configure_logging(1).level == logging.INFO
            assert configure_logging(2).level == logging.DEBUG
            assert configure_logging(5).level == logging.DEBUG
        finally:
            _teardown()

    def test_idempotent_reconfiguration(self):
        try:
            root = configure_logging(1)
            before = len(root.handlers)
            configure_logging(2)
            assert len(root.handlers) == before
        finally:
            _teardown()

    def test_messages_reach_stream(self):
        stream = io.StringIO()
        try:
            configure_logging(1, stream=stream)
            get_logger("data").info("loaded %d rows", 42)
            get_logger("data").debug("hidden at INFO")
            text = stream.getvalue()
            assert "loaded 42 rows" in text
            assert "repro.data" in text
            assert "hidden at INFO" not in text
        finally:
            _teardown()

    def test_warning_only_by_default(self):
        stream = io.StringIO()
        try:
            configure_logging(0, stream=stream)
            get_logger("core").info("quiet")
            get_logger("core").warning("loud")
            text = stream.getvalue()
            assert "quiet" not in text
            assert "loud" in text
        finally:
            _teardown()
