"""Robustness tests for the session flight recorder journal."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.engine import SearchEngine
from repro.core.search import drive
from repro.core.serialization import checkpoint_to_dict, resume_engine
from repro.exceptions import JournalError
from repro.interaction.oracle import OracleUser
from repro.obs.journal import (
    JOURNAL_FORMAT,
    JOURNAL_SCHEMA_VERSION,
    SessionJournal,
    canonical_json,
    journal_summary,
    read_journal,
    sha256_hex,
)

CONFIG = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)

_GENESIS = "repro.session-journal:genesis"


@pytest.fixture(scope="module")
def clustered(small_clustered_module):
    return small_clustered_module.dataset


@pytest.fixture(scope="module")
def small_clustered_module():
    from repro.data.synthetic import (
        ProjectedClusterSpec,
        generate_projected_clusters,
    )

    spec = ProjectedClusterSpec(
        n_points=600,
        dim=10,
        n_clusters=3,
        cluster_dim=4,
        axis_parallel=True,
        noise_fraction=0.1,
    )
    return generate_projected_clusters(spec, np.random.default_rng(99))


@pytest.fixture(scope="module")
def journaled_run(clustered, tmp_path_factory):
    """One finished journaled run, shared by the read-only tests."""
    path = tmp_path_factory.mktemp("journal") / "run.jsonl"
    qi = int(clustered.cluster_indices(0)[0])
    journal = SessionJournal.create(path)
    engine = SearchEngine(clustered, CONFIG, journal=journal)
    result = drive(engine, clustered.points[qi], OracleUser(clustered, qi))
    journal.close()
    return path, result


def _rewrite(path, records, out_path):
    """Re-encode raw record dicts with a freshly recomputed hash chain.

    This is the attack surface replay must catch: a journal whose chain
    is *internally consistent* but whose content was altered.
    """
    chain = _GENESIS
    lines = []
    for obj in records:
        record = {k: obj[k] for k in ("seq", "type", "ts", "payload")}
        chain = sha256_hex(chain + canonical_json(record))
        record["chain"] = chain
        lines.append(canonical_json(record))
    out_path.write_text("\n".join(lines) + "\n")
    return out_path


def _raw_records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestReadJournal:
    def test_reads_a_fresh_run(self, journaled_run):
        path, result = journaled_run
        records = read_journal(path)
        assert records[0].type == "journal_header"
        assert records[0].payload["format"] == JOURNAL_FORMAT
        assert records[0].payload["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert records[1].type == "session_start"
        assert records[-1].type == "result"
        assert [r.seq for r in records] == list(range(len(records)))
        types = {r.type for r in records}
        assert {"view", "decision"} <= types

    def test_summary(self, journaled_run):
        path, result = journaled_run
        summary = journal_summary(read_journal(path))
        assert summary["finished"]
        assert summary["views"] == summary["decisions"]
        assert summary["views"] == result.session.total_views
        assert summary["checkpoints"] == 0 and summary["resumes"] == 0

    def test_result_record_matches_run(self, journaled_run):
        path, result = journaled_run
        terminal = read_journal(path)[-1]
        assert terminal.payload["reason"] == result.reason.name
        assert terminal.payload["neighbor_indices"] == [
            int(i) for i in result.neighbor_indices
        ]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        with pytest.raises(JournalError, match="empty"):
            read_journal(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            read_journal(tmp_path / "nope.jsonl")

    def test_truncated_final_line_rejected(self, journaled_run, tmp_path):
        path, _ = journaled_run
        clipped = tmp_path / "clipped.jsonl"
        clipped.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(JournalError, match="truncated"):
            read_journal(clipped)

    def test_edited_record_breaks_the_chain(self, journaled_run, tmp_path):
        path, _ = journaled_run
        lines = path.read_text().splitlines()
        obj = json.loads(lines[3])
        obj["payload"]["step"] = 999  # in-place edit, chain not recomputed
        lines[3] = canonical_json(obj)
        doctored = tmp_path / "doctored.jsonl"
        doctored.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="chain breaks at record 3"):
            read_journal(doctored)

    def test_sequence_gap_rejected(self, journaled_run, tmp_path):
        path, _ = journaled_run
        raw = _raw_records(path)
        del raw[2]  # drop a middle record, renumbering nothing
        gapped = _rewrite(path, raw, tmp_path / "gapped.jsonl")
        with pytest.raises(JournalError, match="sequence gap"):
            read_journal(gapped)

    def test_schema_version_skew_rejected(self, journaled_run, tmp_path):
        path, _ = journaled_run
        raw = _raw_records(path)
        raw[0]["payload"]["schema_version"] = JOURNAL_SCHEMA_VERSION + 1
        skewed = _rewrite(path, raw, tmp_path / "skewed.jsonl")
        with pytest.raises(JournalError, match="unsupported schema version"):
            read_journal(skewed)

    def test_wrong_format_rejected(self, journaled_run, tmp_path):
        path, _ = journaled_run
        raw = _raw_records(path)
        raw[0]["payload"]["format"] = "not.a.journal"
        wrong = _rewrite(path, raw, tmp_path / "wrong.jsonl")
        with pytest.raises(JournalError, match="not a session journal"):
            read_journal(wrong)


class TestWriter:
    def test_create_truncates_existing_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("garbage\n" * 10)
        journal = SessionJournal.create(path)
        journal.close()
        records = read_journal(path)
        assert len(records) == 1 and records[0].type == "journal_header"

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = SessionJournal.create(tmp_path / "j.jsonl")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError, match="closed"):
            journal._append("view", {})

    def test_context_manager_closes(self, tmp_path):
        with SessionJournal.create(tmp_path / "j.jsonl") as journal:
            assert journal.seq == 0
        with pytest.raises(JournalError, match="closed"):
            journal._append("view", {})

    def test_cursor_tracks_the_append_position(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SessionJournal.create(path)
        cursor = journal.cursor()
        journal.close()
        assert cursor["seq"] == 0
        assert cursor["offset"] == path.stat().st_size
        assert cursor["chain"] == read_journal(path)[-1].chain


class TestResumeAppend:
    def _journal_with_cursor(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SessionJournal.create(path)
        cursor = journal.cursor()
        journal.close()
        return path, cursor

    def test_resume_appends_without_rewriting(self, tmp_path):
        path, cursor = self._journal_with_cursor(tmp_path)
        before = path.read_bytes()
        resumed = SessionJournal.resume(path, cursor)
        resumed._append("resume", {"step": 1})
        resumed.close()
        after = path.read_bytes()
        assert after.startswith(before)  # append-only: prefix untouched
        records = read_journal(path)  # chain continuous across the seam
        assert [r.type for r in records] == ["journal_header", "resume"]

    def test_resume_rejects_truncated_file(self, tmp_path):
        path, cursor = self._journal_with_cursor(tmp_path)
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(JournalError, match="shorter than"):
            SessionJournal.resume(path, cursor)

    def test_resume_refuses_to_fork_history(self, tmp_path):
        path, cursor = self._journal_with_cursor(tmp_path)
        resumed = SessionJournal.resume(path, cursor)
        resumed._append("resume", {"step": 1})
        resumed.close()
        # The stale cursor now points mid-file: appending would fork.
        with pytest.raises(JournalError, match="refusing to fork"):
            SessionJournal.resume(path, cursor)

    def test_resume_rejects_malformed_cursor(self, tmp_path):
        path, _ = self._journal_with_cursor(tmp_path)
        with pytest.raises(JournalError, match="malformed journal cursor"):
            SessionJournal.resume(path, {"seq": 0})

    def test_resume_rejects_mismatched_chain(self, tmp_path):
        path, cursor = self._journal_with_cursor(tmp_path)
        cursor = dict(cursor, chain="0" * 64)
        with pytest.raises(JournalError, match="does not end at"):
            SessionJournal.resume(path, cursor)


class TestEngineIntegration:
    def test_checkpoint_embeds_cursor_and_resume_appends(
        self, clustered, tmp_path
    ):
        """The full suspend/resume lifecycle yields ONE continuous journal."""
        path = tmp_path / "ckpt.jsonl"
        qi = int(clustered.cluster_indices(0)[0])
        journal = SessionJournal.create(path)
        engine = SearchEngine(clustered, CONFIG, journal=journal)
        user = OracleUser(clustered, qi)
        event = engine.start(clustered.points[qi])
        for _ in range(2):
            event = engine.submit(user.review_view(event.view))
        payload = checkpoint_to_dict(engine)
        engine.close()
        journal.close()
        assert payload["journal"]["path"] == str(path)
        cursor = payload["journal"]["cursor"]

        resumed_journal = SessionJournal.resume(path, cursor)
        engine, event = resume_engine(
            payload, clustered, journal=resumed_journal
        )
        while not engine.finished:
            event = engine.submit(user.review_view(event.view))
        resumed_journal.close()

        summary = journal_summary(read_journal(path))
        assert summary["checkpoints"] == 1
        assert summary["resumes"] == 1
        assert summary["finished"]

    def test_journaling_does_not_perturb_the_search(self, clustered, tmp_path):
        qi = int(clustered.cluster_indices(0)[0])
        plain = drive(
            SearchEngine(clustered, CONFIG),
            clustered.points[qi],
            OracleUser(clustered, qi),
        )
        journal = SessionJournal.create(tmp_path / "j.jsonl")
        journaled = drive(
            SearchEngine(clustered, CONFIG, journal=journal),
            clustered.points[qi],
            OracleUser(clustered, qi),
        )
        journal.close()
        assert np.array_equal(
            plain.neighbor_indices, journaled.neighbor_indices
        )
