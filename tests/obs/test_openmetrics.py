"""OpenMetrics exposition, metrics files, digest, and the scrape server."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.openmetrics import (
    OPENMETRICS_CONTENT_TYPE,
    render_metrics_digest,
    render_openmetrics,
    start_metrics_server,
    write_metrics,
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("batch.parallel.tasks").inc(8)
    registry.gauge("kde.cache.entries").set(25)
    h = registry.histogram("kde.grid.eval_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        h.observe(value)
    return registry


class TestRendering:
    def test_counter_total_suffix(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_batch_parallel_tasks counter" in text
        assert "repro_batch_parallel_tasks_total 8" in text

    def test_gauge_verbatim(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_kde_cache_entries gauge" in text
        assert "repro_kde_cache_entries 25" in text

    def test_histogram_cumulative_buckets(self):
        text = render_openmetrics(_populated_registry())
        assert 'repro_kde_grid_eval_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_kde_grid_eval_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_kde_grid_eval_seconds_bucket{le="1.0"} 3' in text
        assert 'repro_kde_grid_eval_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_kde_grid_eval_seconds_count 4" in text
        assert "repro_kde_grid_eval_seconds_sum 5.555" in text

    def test_quantile_gauge_family(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_kde_grid_eval_seconds_quantile gauge" in text
        assert 'repro_kde_grid_eval_seconds_quantile{q="0.5"}' in text
        assert 'repro_kde_grid_eval_seconds_quantile{q="0.99"}' in text

    def test_ends_with_eof(self):
        assert render_openmetrics(_populated_registry()).endswith("# EOF\n")

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_dotted_names_sanitized(self):
        text = render_openmetrics(_populated_registry())
        # No raw dots survive in metric names.
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert "." not in line.split(" ", 1)[0].split("{", 1)[0]


class TestWriteMetrics:
    def test_prom_suffix_writes_text(self, tmp_path):
        path = write_metrics(
            tmp_path / "metrics.prom", _populated_registry()
        )
        content = path.read_text()
        assert content.endswith("# EOF\n")
        assert "repro_batch_parallel_tasks_total" in content

    def test_json_suffix_writes_schema_versioned_document(self, tmp_path):
        path = write_metrics(
            tmp_path / "metrics.json", _populated_registry()
        )
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro.metrics"
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION
        assert (
            payload["metrics"]["batch.parallel.tasks"]["value"] == 8.0
        )

    def test_parent_directories_created(self, tmp_path):
        path = write_metrics(
            tmp_path / "deep" / "dir" / "m.prom", MetricsRegistry()
        )
        assert path.exists()


class TestDigest:
    def test_cache_line_and_histogram_percentiles(self):
        registry = MetricsRegistry()
        registry.counter("kde.cache.hit").inc(15)
        registry.counter("kde.cache.miss").inc(25)
        h = registry.histogram("kde.grid.eval_seconds", buckets=(0.01, 0.1))
        for _ in range(10):
            h.observe(0.05)
        digest = render_metrics_digest(registry)
        assert "kde grid cache: 15 hits / 25 misses" in digest
        assert "37.5%" in digest
        assert "kde.grid.eval_seconds: n=10" in digest
        assert "ms" in digest  # seconds histograms shown in milliseconds

    def test_parallel_counters_shown_when_nonzero(self):
        registry = MetricsRegistry()
        registry.counter("batch.parallel.tasks").inc(4)
        registry.counter("batch.parallel.retries").inc(0)
        digest = render_metrics_digest(registry)
        assert "batch.parallel.tasks: 4" in digest
        assert "batch.parallel.retries" not in digest

    def test_empty_registry_fallback(self):
        digest = render_metrics_digest(MetricsRegistry())
        assert "(no instruments populated)" in digest


class TestServer:
    def test_serves_live_registry(self):
        registry = _populated_registry()
        server = start_metrics_server(0, registry=registry)
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.headers["Content-Type"] == (
                    OPENMETRICS_CONTENT_TYPE
                )
                body = response.read().decode()
            assert "repro_batch_parallel_tasks_total 8" in body
            # Live mode: a later increment shows up on the next scrape.
            registry.counter("batch.parallel.tasks").inc(1)
            with urllib.request.urlopen(url, timeout=5) as response:
                assert "repro_batch_parallel_tasks_total 9" in (
                    response.read().decode()
                )
            assert server.request_count == 2
        finally:
            server.stop()

    def test_serves_metrics_json(self):
        server = start_metrics_server(0, registry=_populated_registry())
        try:
            url = f"http://127.0.0.1:{server.port}/metrics.json"
            with urllib.request.urlopen(url, timeout=5) as response:
                payload = json.loads(response.read().decode())
            assert payload["format"] == "repro.metrics"
            assert "kde.grid.eval_seconds" in payload["metrics"]
        finally:
            server.stop()

    def test_serves_frozen_snapshot(self):
        payload = _populated_registry().to_dict()
        server = start_metrics_server(0, snapshot_payload=payload)
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode()
            assert "repro_kde_cache_entries 25" in body
        finally:
            server.stop()

    def test_unknown_path_is_404(self):
        server = start_metrics_server(0, registry=MetricsRegistry())
        try:
            url = f"http://127.0.0.1:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_registry_and_snapshot_are_exclusive(self):
        from repro.obs.openmetrics import MetricsServer

        with pytest.raises(ValueError):
            MetricsServer(
                ("127.0.0.1", 0),
                registry=MetricsRegistry(),
                snapshot_payload={"metrics": {}},
            )


class TestHealthAndSessions:
    def test_healthz(self):
        server = start_metrics_server(0, registry=MetricsRegistry())
        try:
            url = f"http://127.0.0.1:{server.port}/healthz"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.headers["Content-Type"].startswith(
                    "application/json"
                )
                payload = json.loads(response.read().decode())
            assert payload["status"] == "ok"
            assert payload["source"] == "live"
            assert payload["uptime_seconds"] >= 0.0
            assert payload["schema_version"] == METRICS_SCHEMA_VERSION
            assert set(payload["sessions"]) == {
                "live",
                "suspended",
                "finished",
                "failed",
            }
        finally:
            server.stop()

    def test_healthz_reports_snapshot_source(self):
        payload = _populated_registry().to_dict()
        server = start_metrics_server(0, snapshot_payload=payload)
        try:
            url = f"http://127.0.0.1:{server.port}/healthz"
            with urllib.request.urlopen(url, timeout=5) as response:
                health = json.loads(response.read().decode())
            assert health["source"] == "snapshot"
        finally:
            server.stop()

    def test_sessions_endpoint_lists_registered_sessions(self):
        from repro.obs.registry import SESSIONS

        sid = SESSIONS.register(dataset="test-ds", n_points=42, dim=5)
        server = start_metrics_server(0, registry=MetricsRegistry())
        try:
            url = f"http://127.0.0.1:{server.port}/sessions"
            with urllib.request.urlopen(url, timeout=5) as response:
                payload = json.loads(response.read().decode())
            assert payload["counts"]["live"] >= 1
            entry = next(
                s
                for s in payload["sessions"]
                if s["session_id"] == sid
            )
            assert entry["dataset"] == "test-ds"
            assert entry["n_points"] == 42
        finally:
            server.stop()
            SESSIONS.finish(sid, reason="test")

    def test_live_exposition_includes_session_series(self):
        from repro.obs.registry import SESSIONS

        sid = SESSIONS.register(dataset="test-ds", n_points=10, dim=3)
        server = start_metrics_server(0, registry=MetricsRegistry())
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode()
            assert f'repro_session_steps{{session="{sid}"' in body
            assert body.endswith("# EOF\n")
            # Session series sit above the terminator, not after it.
            assert body.index("repro_session_steps") < body.index("# EOF")
        finally:
            server.stop()
            SESSIONS.finish(sid, reason="test")

    def test_snapshot_exposition_has_no_session_series(self):
        from repro.obs.registry import SESSIONS

        sid = SESSIONS.register(dataset="test-ds", n_points=10, dim=3)
        payload = _populated_registry().to_dict()
        server = start_metrics_server(0, snapshot_payload=payload)
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode()
            # Frozen snapshots describe another process's registry; this
            # process's sessions must not leak into them.
            assert "repro_session_steps" not in body
        finally:
            server.stop()
            SESSIONS.finish(sid, reason="test")

    def test_404_lists_known_paths(self):
        server = start_metrics_server(0, registry=MetricsRegistry())
        try:
            url = f"http://127.0.0.1:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            body = excinfo.value.read().decode()
            for path in ("/metrics", "/metrics.json", "/sessions", "/healthz"):
                assert path in body
        finally:
            server.stop()
