"""Property tests: histogram quantile estimates vs exact sample quantiles.

The estimator interpolates linearly inside the bucket covering the
target rank, with the bucket edges sharpened by the exact observed
min/max.  Its documented contract:

* ``q=0`` / ``q=1`` are exact (the tracked extremes);
* the estimate is always within ``[min, max]`` and finite, including
  when mass sits in the ``+inf`` overflow bucket;
* the estimate is monotone in ``q``;
* the absolute error against the exact sample quantile is bounded by
  the width of the (sharpened) bucket containing that quantile.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, estimate_quantile

BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)

observations = st.lists(
    st.floats(
        min_value=0.001,
        max_value=100.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=60,
)
quantile_values = st.floats(min_value=0.0, max_value=1.0)


def _fill(values: list[float]) -> Histogram:
    h = Histogram("h", buckets=BUCKETS)
    for value in values:
        h.observe(value)
    return h


def _exact_quantile(values: list[float], q: float) -> float:
    """The exact sample quantile at the estimator's rank definition."""
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q * len(ordered))
    return ordered[min(rank, len(ordered)) - 1]


def _covering_bucket_width(values: list[float], q: float) -> float:
    """Width of the sharpened bucket containing the q-quantile rank."""
    h = _fill(values)
    target = q * h.count
    cumulative = 0
    minimum, maximum = min(values), max(values)
    for index, count in enumerate(h.counts):
        cumulative += count
        if cumulative >= target and count > 0:
            lower = minimum if index == 0 else BUCKETS[index - 1]
            upper = maximum if index == len(BUCKETS) else BUCKETS[index]
            lower = max(lower, minimum)
            upper = min(upper, maximum)
            return max(0.0, upper - lower)
    return 0.0  # pragma: no cover


@settings(max_examples=200, deadline=None)
@given(observations)
def test_extremes_are_exact(values):
    h = _fill(values)
    assert h.quantile(0.0) == pytest.approx(min(values))
    assert h.quantile(1.0) == pytest.approx(max(values))


@settings(max_examples=200, deadline=None)
@given(observations, quantile_values)
def test_estimate_is_finite_and_within_range(values, q):
    estimate = _fill(values).quantile(q)
    assert math.isfinite(estimate)
    assert min(values) - 1e-9 <= estimate <= max(values) + 1e-9


@settings(max_examples=100, deadline=None)
@given(observations, quantile_values, quantile_values)
def test_monotone_in_q(values, q1, q2):
    h = _fill(values)
    lo, hi = sorted((q1, q2))
    assert h.quantile(lo) <= h.quantile(hi) + 1e-9


@settings(max_examples=200, deadline=None)
@given(observations, st.floats(min_value=0.01, max_value=0.99))
def test_error_bounded_by_covering_bucket_width(values, q):
    estimate = _fill(values).quantile(q)
    exact = _exact_quantile(values, q)
    width = _covering_bucket_width(values, q)
    assert abs(estimate - exact) <= width + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=51.0, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_inf_overflow_bucket_stays_finite(values):
    """All mass beyond the last bound: estimates come from [min, max]."""
    h = _fill(values)
    for q in (0.25, 0.5, 0.9, 0.99):
        estimate = h.quantile(q)
        assert math.isfinite(estimate)
        assert min(values) - 1e-9 <= estimate <= max(values) + 1e-9


def test_single_observation_every_quantile_is_it():
    h = _fill([7.5])
    for q in (0.0, 0.1, 0.5, 0.9, 1.0):
        assert h.quantile(q) == pytest.approx(7.5)


def test_estimate_quantile_empty_is_nan():
    assert math.isnan(
        estimate_quantile(BUCKETS, [0] * (len(BUCKETS) + 1), 0, math.inf, -math.inf, 0.5)
    )


def test_estimate_quantile_rejects_out_of_range():
    with pytest.raises(ValueError):
        estimate_quantile(BUCKETS, [1] * (len(BUCKETS) + 1), 7, 0.1, 60.0, 1.5)
