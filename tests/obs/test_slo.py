"""SLO tracker: burn-rate arithmetic, state machine, exposition.

Every test drives the tracker with an explicit ``now`` so the window
math is exact — no sleeping, no clock reads.
"""

from __future__ import annotations

import pytest

from repro.obs.slo import (
    DEFAULT_FAST_BURN_THRESHOLD,
    DEFAULT_SERVICE_OBJECTIVES,
    DEFAULT_SLOW_BURN_THRESHOLD,
    STATE_FAST_BURN,
    STATE_OK,
    STATE_SLOW_BURN,
    SloObjective,
    SloTracker,
)


def tracker(**kwargs) -> SloTracker:
    """A tracker with one easy-arithmetic objective.

    Availability 0.9 -> availability budget 0.1; latency target 0.8
    over 1s -> latency budget 0.2.  A 10% error ratio is burn 1.0.
    """
    objective = SloObjective(
        "/r",
        availability=0.9,
        latency_threshold_seconds=1.0,
        latency_target=0.8,
    )
    defaults = dict(fast_window=10, slow_window=100)
    defaults.update(kwargs)
    return SloTracker([objective], **defaults)


class TestObjectiveValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(availability=0.0),
            dict(availability=1.0),
            dict(latency_target=1.5),
            dict(latency_threshold_seconds=0.0),
        ],
    )
    def test_bad_objective_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SloObjective("/r", **kwargs)

    def test_duplicate_routes_rejected(self):
        with pytest.raises(ValueError, match="duplicate route"):
            SloTracker([SloObjective("/r"), SloObjective("/r")])

    def test_bad_windows_rejected(self):
        with pytest.raises(ValueError, match="windows"):
            tracker(fast_window=100, slow_window=10)

    def test_default_objectives_cover_service_routes(self):
        routes = {o.route for o in DEFAULT_SERVICE_OBJECTIVES}
        assert routes == {
            "/sessions",
            "/sessions/{id}/decision",
            "/sessions/{id}",
            "/healthz",
        }
        assert SloTracker().routes == tuple(
            o.route for o in DEFAULT_SERVICE_OBJECTIVES
        )


class TestBurnArithmetic:
    def test_exact_burn_rates(self):
        t = tracker()
        # 20 requests at t=1000: 2 are 5xx (10% -> availability burn
        # 1.0), 5 are slow (25% -> latency burn 1.25).
        for i in range(20):
            t.record(
                "/r",
                status=500 if i < 2 else 200,
                latency_seconds=2.0 if i < 5 else 0.1,
                now=1000.0,
            )
        report = t.snapshot(now=1000.0)["routes"]["/r"]
        fast = report["windows"]["fast"]
        assert fast["requests"] == 20
        assert fast["errors"] == 2
        assert fast["slow_requests"] == 5
        assert fast["availability_burn"] == pytest.approx(1.0)
        assert fast["latency_burn"] == pytest.approx(1.25)
        # Same counts land in the slow window too.
        assert report["windows"]["slow"]["availability_burn"] == (
            pytest.approx(1.0)
        )

    def test_boundary_latency_is_not_slow(self):
        t = tracker()
        t.record("/r", status=200, latency_seconds=1.0, now=50.0)
        t.record("/r", status=200, latency_seconds=1.0001, now=50.0)
        fast = t.snapshot(now=50.0)["routes"]["/r"]["windows"]["fast"]
        assert fast["slow_requests"] == 1

    def test_4xx_spends_no_availability_budget(self):
        t = tracker()
        for _ in range(10):
            t.record("/r", status=404, latency_seconds=0.1, now=7.0)
        report = t.snapshot(now=7.0)["routes"]["/r"]
        assert report["windows"]["fast"]["errors"] == 0
        assert report["availability_state"] == STATE_OK

    def test_requests_age_out_of_windows(self):
        t = tracker()  # fast_window=10, slow_window=100
        t.record("/r", status=500, latency_seconds=0.1, now=0.0)
        report = t.snapshot(now=5.0)["routes"]["/r"]
        assert report["windows"]["fast"]["errors"] == 1
        # Past the fast window the error only burns the slow window...
        report = t.snapshot(now=50.0)["routes"]["/r"]
        assert report["windows"]["fast"]["errors"] == 0
        assert report["windows"]["slow"]["errors"] == 1
        # ...and past the slow window it is gone, though lifetime
        # totals keep it.
        report = t.snapshot(now=500.0)["routes"]["/r"]
        assert report["windows"]["slow"]["errors"] == 0
        assert report["totals"]["errors"] == 1

    def test_untracked_route_ignored(self):
        t = tracker()
        t.record("/nope", status=500, latency_seconds=9.0, now=1.0)
        assert t.snapshot(now=1.0)["state"] == STATE_OK


class TestStates:
    def test_fast_burn_trips_on_short_window(self):
        # Defaults: fast threshold 14.4 on budget 0.1 -> an error
        # ratio >= 1.44 is impossible, so use a tighter objective:
        # availability 0.99 -> budget 0.01; 20% errors -> burn 20.
        t = SloTracker(
            [SloObjective("/r", availability=0.99)],
            fast_window=10,
            slow_window=100,
        )
        for i in range(10):
            t.record(
                "/r",
                status=500 if i < 2 else 200,
                latency_seconds=0.1,
                now=100.0,
            )
        report = t.snapshot(now=100.0)["routes"]["/r"]
        assert report["windows"]["fast"]["availability_burn"] == (
            pytest.approx(20.0)
        )
        assert report["availability_state"] == STATE_FAST_BURN
        assert report["state"] == STATE_FAST_BURN
        assert t.snapshot(now=100.0)["state"] == STATE_FAST_BURN

    def test_slow_burn_without_fast_burn(self):
        # 10% errors on budget 0.01 -> burn 10: above the slow
        # threshold (6), below the fast one (14.4).  Keep the recent
        # fast window clean so only the slow window sees the errors.
        t = SloTracker(
            [SloObjective("/r", availability=0.99)],
            fast_window=10,
            slow_window=100,
        )
        for i in range(10):
            t.record(
                "/r",
                status=500 if i == 0 else 200,
                latency_seconds=0.1,
                now=100.0,
            )
        report = t.snapshot(now=150.0)["routes"]["/r"]
        assert report["windows"]["fast"]["requests"] == 0
        assert report["windows"]["slow"]["availability_burn"] == (
            pytest.approx(10.0)
        )
        assert report["availability_state"] == STATE_SLOW_BURN

    def test_latency_and_availability_fold_to_worst(self):
        # All requests slow (latency burn 1/0.2 = 5 >= custom slow
        # threshold), none failing.
        t = tracker(slow_burn_threshold=5.0, fast_burn_threshold=100.0)
        for _ in range(10):
            t.record("/r", status=200, latency_seconds=5.0, now=1.0)
        report = t.snapshot(now=1.0)["routes"]["/r"]
        assert report["availability_state"] == STATE_OK
        assert report["latency_state"] == STATE_SLOW_BURN
        assert report["state"] == STATE_SLOW_BURN

    def test_thresholds_default_to_sre_pair(self):
        t = SloTracker()
        assert t.fast_burn_threshold == DEFAULT_FAST_BURN_THRESHOLD == 14.4
        assert t.slow_burn_threshold == DEFAULT_SLOW_BURN_THRESHOLD == 6.0


class TestBudget:
    def test_budget_remaining_exact(self):
        t = tracker()
        # Slow window allows 0.1 * 20 = 2 errors; one spent -> 50%.
        for i in range(20):
            t.record(
                "/r",
                status=500 if i == 0 else 200,
                latency_seconds=0.1,
                now=10.0,
            )
        remaining = t.snapshot(now=10.0)["routes"]["/r"][
            "error_budget_remaining"
        ]
        assert remaining["availability"] == pytest.approx(0.5)
        assert remaining["latency"] == pytest.approx(1.0)

    def test_budget_floors_at_zero(self):
        t = tracker()
        for _ in range(10):
            t.record("/r", status=500, latency_seconds=0.1, now=10.0)
        remaining = t.snapshot(now=10.0)["routes"]["/r"][
            "error_budget_remaining"
        ]
        assert remaining["availability"] == 0.0

    def test_no_traffic_means_full_budget(self):
        remaining = tracker().snapshot(now=0.0)["routes"]["/r"][
            "error_budget_remaining"
        ]
        assert remaining == {"availability": 1.0, "latency": 1.0}


class TestSurfaces:
    def test_snapshot_schema(self):
        snap = tracker().snapshot(now=0.0)
        assert set(snap) == {"windows", "burn_thresholds", "routes", "state"}
        assert snap["windows"] == {"fast_seconds": 10, "slow_seconds": 100}
        report = snap["routes"]["/r"]
        assert set(report) == {
            "objective",
            "windows",
            "totals",
            "error_budget_remaining",
            "availability_state",
            "latency_state",
            "state",
        }

    def test_health_summary_is_compact(self):
        assert tracker().health_summary(now=0.0) == {
            "state": STATE_OK,
            "routes": {"/r": STATE_OK},
        }

    def test_openmetrics_lines(self):
        t = tracker()
        for i in range(10):
            t.record(
                "/r",
                status=500 if i == 0 else 200,
                latency_seconds=0.1,
                now=5.0,
            )
        lines = t.openmetrics_lines(now=5.0)
        text = "\n".join(lines)
        assert "# TYPE repro_slo_burn_rate gauge" in text
        assert (
            'repro_slo_burn_rate{route="/r",signal="availability",'
            'window="fast"} 1' in lines
        )
        assert 'repro_slo_state{route="/r"} 0' in lines
        assert (
            'repro_slo_error_budget_remaining{route="/r",'
            'signal="availability"} 0' in text
        )
        assert not text.endswith("# EOF")
