"""Tests for deterministic journal replay, diffing, and inspection."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.engine import SearchEngine
from repro.core.search import drive
from repro.exceptions import JournalError
from repro.interaction.oracle import OracleUser
from repro.obs.journal import (
    SessionJournal,
    canonical_json,
    read_journal,
    sha256_hex,
)
from repro.obs.replay import (
    dataset_from_provenance,
    inspect_journal,
    replay_journal,
)

CONFIG = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)

_GENESIS = "repro.session-journal:genesis"

_PROVENANCE = {
    "kind": "projected_clusters",
    "seed": 99,
    "spec": {
        "n_points": 600,
        "dim": 10,
        "n_clusters": 3,
        "cluster_dim": 4,
        "axis_parallel": True,
        "noise_fraction": 0.1,
    },
}


@pytest.fixture(scope="module")
def clustered():
    # Matches _PROVENANCE exactly, so provenance-driven replay rebuilds
    # this same dataset (and the conftest small_clustered fixture).
    return dataset_from_provenance(_PROVENANCE)


@pytest.fixture(scope="module")
def journaled_run(clustered, tmp_path_factory):
    path = tmp_path_factory.mktemp("replay") / "run.jsonl"
    qi = int(clustered.cluster_indices(0)[0])
    journal = SessionJournal.create(path, provenance=_PROVENANCE)
    engine = SearchEngine(clustered, CONFIG, journal=journal)
    result = drive(engine, clustered.points[qi], OracleUser(clustered, qi))
    journal.close()
    return path, result


def _perturb(path, out_path, *, seq, mutate):
    """Alter one record's payload and recompute the whole hash chain.

    The result is a journal that *validates* (chain OK) but no longer
    matches what the engine actually did — exactly what replay exists
    to catch.
    """
    chain = _GENESIS
    lines = []
    for line in path.read_text().splitlines():
        obj = json.loads(line)
        if obj["seq"] == seq:
            mutate(obj["payload"])
        record = {k: obj[k] for k in ("seq", "type", "ts", "payload")}
        chain = sha256_hex(chain + canonical_json(record))
        record["chain"] = chain
        lines.append(canonical_json(record))
    out_path.write_text("\n".join(lines) + "\n")
    return out_path


class TestCleanReplay:
    def test_replay_with_explicit_dataset(self, journaled_run, clustered):
        path, result = journaled_run
        report = replay_journal(path, dataset=clustered)
        assert report.clean
        assert report.finished
        assert report.views_checked == result.session.total_views
        assert report.decisions_replayed == result.session.total_views
        assert "CLEAN" in report.describe()

    def test_replay_from_provenance(self, journaled_run):
        path, _ = journaled_run
        assert replay_journal(path).clean

    def test_unfinished_journal_replays_clean(self, clustered, tmp_path):
        path = tmp_path / "partial.jsonl"
        qi = int(clustered.cluster_indices(0)[0])
        journal = SessionJournal.create(path, provenance=_PROVENANCE)
        engine = SearchEngine(clustered, CONFIG, journal=journal)
        user = OracleUser(clustered, qi)
        event = engine.start(clustered.points[qi])
        for _ in range(3):
            event = engine.submit(user.review_view(event.view))
        engine.close()
        journal.close()
        report = replay_journal(path, dataset=clustered)
        assert report.clean
        assert not report.finished
        assert "unfinished" in report.describe()


class TestDivergence:
    def test_perturbed_view_reports_exact_seq(
        self, journaled_run, clustered, tmp_path
    ):
        path, _ = journaled_run
        target = next(
            r.seq for r in read_journal(path) if r.type == "view"
        )

        def flip_digest(payload):
            payload["live_digest"] = "0" * 64

        doctored = _perturb(
            path, tmp_path / "view.jsonl", seq=target, mutate=flip_digest
        )
        report = replay_journal(doctored, dataset=clustered)
        assert not report.clean
        assert report.divergence.seq == target
        assert report.divergence.kind == "view"
        assert report.divergence.fields == ("live_digest",)
        assert f"DIVERGED at seq {target}" in report.describe()

    def test_perturbed_decision_cascades_downstream(
        self, journaled_run, clustered, tmp_path
    ):
        """A changed decision diverges at the first state it influences.

        The decision itself replays (it is an *input*, not a check), so
        the divergence surfaces at a later record — a subsequent view
        if the live set shifts, or the terminal result where the
        accumulated counting probabilities differ.
        """
        path, _ = journaled_run
        records = read_journal(path)
        target = next(r.seq for r in records if r.type == "decision")

        def drop_half(payload):
            kept = payload["selected_indices"][::2]
            payload["selected_indices"] = kept
            payload["selected_count"] = len(kept)

        doctored = _perturb(
            path, tmp_path / "dec.jsonl", seq=target, mutate=drop_half
        )
        report = replay_journal(doctored, dataset=clustered)
        assert not report.clean
        assert report.divergence.seq > target
        assert report.divergence.kind in ("view", "result")

    def test_perturbed_result_detected(
        self, journaled_run, clustered, tmp_path
    ):
        path, _ = journaled_run
        target = read_journal(path)[-1].seq

        def clip_neighbors(payload):
            payload["neighbor_indices"] = payload["neighbor_indices"][:1]

        doctored = _perturb(
            path, tmp_path / "res.jsonl", seq=target, mutate=clip_neighbors
        )
        report = replay_journal(doctored, dataset=clustered)
        assert not report.clean
        assert report.divergence.seq == target
        assert report.divergence.kind == "result"
        assert "neighbor_indices" in report.divergence.fields


class TestOperatorErrors:
    def test_mismatched_dataset_is_an_error_not_a_divergence(
        self, journaled_run
    ):
        path, _ = journaled_run
        other = dataset_from_provenance(dict(_PROVENANCE, seed=7))
        with pytest.raises(JournalError, match="dataset mismatch"):
            replay_journal(path, dataset=other)

    def test_missing_provenance_requires_explicit_dataset(
        self, clustered, tmp_path
    ):
        path = tmp_path / "noprov.jsonl"
        qi = int(clustered.cluster_indices(0)[0])
        journal = SessionJournal.create(path)  # no provenance
        engine = SearchEngine(clustered, CONFIG, journal=journal)
        user = OracleUser(clustered, qi)
        event = engine.start(clustered.points[qi])
        engine.submit(user.review_view(event.view))
        engine.close()
        journal.close()
        with pytest.raises(JournalError, match="no dataset provenance"):
            replay_journal(path)
        assert replay_journal(path, dataset=clustered).clean

    def test_unknown_provenance_kind(self):
        with pytest.raises(JournalError, match="unknown dataset provenance"):
            dataset_from_provenance({"kind": "martian"})

    def test_corrupt_journal_raises_before_any_engine_runs(
        self, journaled_run, tmp_path
    ):
        path, _ = journaled_run
        clipped = tmp_path / "clipped.jsonl"
        clipped.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(JournalError):
            replay_journal(clipped)

    def test_headerless_journal_rejected(self, tmp_path):
        path = tmp_path / "short.jsonl"
        journal = SessionJournal.create(path, provenance=_PROVENANCE)
        journal.close()
        with pytest.raises(JournalError, match="no session_start"):
            replay_journal(path)


class TestProvenance:
    def test_case1_kind(self):
        dataset = dataset_from_provenance(
            {"kind": "case1", "seed": 3, "n_points": 300}
        )
        assert dataset.size == 300

    def test_rebuild_is_deterministic(self):
        a = dataset_from_provenance(_PROVENANCE)
        b = dataset_from_provenance(_PROVENANCE)
        assert np.array_equal(a.points, b.points)

    def test_malformed_spec_is_an_error(self):
        with pytest.raises(JournalError, match="cannot rebuild"):
            dataset_from_provenance(
                {"kind": "projected_clusters", "seed": 1, "spec": {"bad": 1}}
            )


class TestGoldenJournal:
    @pytest.mark.parametrize(
        "filename",
        [
            "session_journal_golden.jsonl",
            "session_journal_binned.jsonl",
            "session_journal_subsampled.jsonl",
        ],
    )
    def test_committed_golden_replays_clean(self, filename):
        """The committed flight-recorder baselines still reproduce.

        One journal per ``kde_mode`` (the legacy name is the exact
        mode).  Regenerate deliberately with
        ``PYTHONPATH=src python tests/golden/make_session_journal.py``
        — a divergence here means engine behavior changed for the
        pinned Case-1 workload under that density mode.
        """
        from pathlib import Path

        golden = Path(__file__).parents[1] / "golden" / filename
        report = replay_journal(golden)
        assert report.clean, report.describe()
        assert report.finished


class TestInspect:
    def test_timeline_renders_every_record(self, journaled_run):
        path, _ = journaled_run
        records = read_journal(path)
        text = inspect_journal(path)
        assert f"{len(records)} records, chain OK" in text
        assert "session_start" in text
        assert "summary:" in text
        assert "finished:    yes" in text
        # One timeline row per record (plus header + 6 summary lines).
        assert len(text.splitlines()) == len(records) + 7

    def test_checkpoint_resume_rows(self, clustered, tmp_path):
        from repro.core.serialization import checkpoint_to_dict, resume_engine

        path = tmp_path / "ckpt.jsonl"
        qi = int(clustered.cluster_indices(0)[0])
        journal = SessionJournal.create(path, provenance=_PROVENANCE)
        engine = SearchEngine(clustered, CONFIG, journal=journal)
        user = OracleUser(clustered, qi)
        event = engine.start(clustered.points[qi])
        event = engine.submit(user.review_view(event.view))
        payload = checkpoint_to_dict(engine)
        engine.close()
        journal.close()
        resumed_journal = SessionJournal.resume(
            path, payload["journal"]["cursor"]
        )
        engine, event = resume_engine(
            payload, clustered, journal=resumed_journal
        )
        while not engine.finished:
            event = engine.submit(user.review_view(event.view))
        resumed_journal.close()

        text = inspect_journal(path)
        assert "checkpoint" in text
        assert "resume" in text
        assert "checkpoints: 1 (resumes: 1)" in text
        # The stitched journal still replays clean end to end.
        assert replay_journal(path, dataset=clustered).clean
