"""Unit tests for the spillover session store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.service.store import SPILL_SUFFIX, SessionStore, SpilloverSessionStore


class TestBasics:
    def test_put_get_delete_roundtrip(self):
        store = SpilloverSessionStore()
        store.put("a", b"payload-a")
        assert store.get("a") == b"payload-a"
        assert "a" in store
        assert store.ids() == ["a"]
        store.delete("a")
        assert store.get("a") is None
        assert "a" not in store
        store.delete("a")  # idempotent

    def test_put_replaces(self):
        store = SpilloverSessionStore()
        store.put("a", b"v1")
        store.put("a", b"v2-longer")
        assert store.get("a") == b"v2-longer"
        assert store.stats()["memory_bytes"] == len(b"v2-longer")

    def test_get_unknown_is_none(self):
        assert SpilloverSessionStore().get("nope") is None

    def test_satisfies_protocol(self):
        assert isinstance(SpilloverSessionStore(), SessionStore)

    def test_budget_requires_spill_dir(self):
        with pytest.raises(ConfigurationError):
            SpilloverSessionStore(byte_budget=100)

    def test_budget_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SpilloverSessionStore(byte_budget=0, spill_dir=tmp_path)


class TestSpillover:
    def test_lru_spills_to_disk_and_restores(self, tmp_path):
        store = SpilloverSessionStore(byte_budget=25, spill_dir=tmp_path)
        store.put("a", b"x" * 10)
        store.put("b", b"y" * 10)
        store.put("c", b"z" * 10)  # 30 bytes: evicts "a" (LRU)
        assert (tmp_path / f"a{SPILL_SUFFIX}").exists()
        stats = store.stats()
        assert stats["memory_entries"] == 2
        assert stats["disk_entries"] == 1
        # Transparent restore promotes it back and spills another.
        assert store.get("a") == b"x" * 10
        assert not (tmp_path / f"a{SPILL_SUFFIX}").exists()
        assert store.get("b") == b"y" * 10
        assert store.get("c") == b"z" * 10

    def test_access_refreshes_lru_order(self, tmp_path):
        store = SpilloverSessionStore(byte_budget=25, spill_dir=tmp_path)
        store.put("a", b"x" * 10)
        store.put("b", b"y" * 10)
        store.get("a")  # now "b" is least recently used
        store.put("c", b"z" * 10)
        assert (tmp_path / f"b{SPILL_SUFFIX}").exists()
        assert not (tmp_path / f"a{SPILL_SUFFIX}").exists()

    def test_oversized_entry_goes_to_disk(self, tmp_path):
        store = SpilloverSessionStore(byte_budget=10, spill_dir=tmp_path)
        store.put("big", b"x" * 1000)
        assert (tmp_path / f"big{SPILL_SUFFIX}").exists()
        assert store.get("big") == b"x" * 1000  # restore still works

    def test_delete_covers_both_tiers(self, tmp_path):
        store = SpilloverSessionStore(byte_budget=10, spill_dir=tmp_path)
        store.put("a", b"x" * 20)  # immediately spilled
        store.delete("a")
        assert store.get("a") is None
        assert not (tmp_path / f"a{SPILL_SUFFIX}").exists()

    def test_flush_to_disk_demotes_hot_entries(self, tmp_path):
        store = SpilloverSessionStore(byte_budget=100, spill_dir=tmp_path)
        store.put("a", b"x" * 10)
        store.put("b", b"y" * 10)
        assert store.flush_to_disk("a") == 1
        assert (tmp_path / f"a{SPILL_SUFFIX}").exists()
        assert store.flush_to_disk("a") == 0  # already cold: no-op
        assert store.flush_to_disk() == 1  # drains the rest ("b")
        stats = store.stats()
        assert stats["memory_entries"] == 0 and stats["disk_entries"] == 2
        assert store.get("a") == b"x" * 10

    def test_flush_to_disk_requires_spill_dir(self):
        with pytest.raises(ConfigurationError):
            SpilloverSessionStore().flush_to_disk()

    def test_adopts_existing_spill_files(self, tmp_path):
        first = SpilloverSessionStore(byte_budget=10, spill_dir=tmp_path)
        first.put("survivor", b"x" * 50)
        # A new store over the same directory (process restart).
        second = SpilloverSessionStore(byte_budget=10, spill_dir=tmp_path)
        assert "survivor" in second
        assert second.get("survivor") == b"x" * 50


class TestEvictionProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get"]),
                st.integers(min_value=0, max_value=7),
            ),
            min_size=1,
            max_size=40,
        ),
        budget=st.integers(min_value=8, max_value=64),
    )
    def test_contents_survive_any_eviction_order(self, tmp_path_factory, ops, budget):
        """Whatever access pattern drives eviction, every session's
        latest payload stays retrievable and both tiers stay disjoint."""
        tmp_path = tmp_path_factory.mktemp("spill")
        store = SpilloverSessionStore(byte_budget=budget, spill_dir=tmp_path)
        expected: dict[str, bytes] = {}
        for kind, key_index in ops:
            key = f"s{key_index}"
            if kind == "put":
                payload = (key * (key_index + 1)).encode()
                store.put(key, payload)
                expected[key] = payload
            else:
                got = store.get(key)
                assert got == expected.get(key)
        for key, payload in expected.items():
            assert store.get(key) == payload
        stats = store.stats()
        assert stats["memory_entries"] + stats["disk_entries"] == len(expected)
        if expected:
            assert stats["memory_bytes"] <= max(
                budget, max(len(p) for p in expected.values())
            )
