"""Fault-injection suite: the service must survive kills, corrupted
checkpoints, and byte-pressure eviction without losing sessions or
crashing the server.

Three fault families:

* **Kill/recover** — the server process "dies" mid-session (runtime
  stopped, all in-memory state discarded); a brand-new service over
  the same spill directory readopts the checkpoint and the session
  finishes over HTTP with a result identical to an uninterrupted run.
* **Corruption/loss** — a truncated or vanished on-disk checkpoint
  maps to one clean 410, the registry marks the session failed, and
  the server keeps serving everything else.
* **Eviction transparency** — under a tiny byte budget, interleaved
  sessions are constantly evicted to disk and restored; none of them
  notice.  (The hypothesis property test over arbitrary eviction
  orders lives at the store layer in ``test_store.py``; here the same
  store runs under the full HTTP stack.)
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import SearchConfig
from repro.core.engine import SearchEngine, ViewRequest
from repro.obs.metrics import counter
from repro.obs.registry import SESSIONS
from repro.service.app import ServiceRuntime, SessionService
from repro.service.client import ServiceClient
from repro.service.store import SPILL_SUFFIX, SpilloverSessionStore
from repro.service.wire import decision_from_payload

from tests.service.conftest import FAST_CONFIG, query_of, run_async

#: Small enough that every checkpoint is oversized and lands on disk
#: immediately — the store behaves like a pure disk store, which is
#: exactly what crash recovery needs to have something to recover.
TINY_BUDGET = 1024


def reject_all_in_process(dataset, config, query):
    """Drive an engine to completion with all-reject decisions.

    Uses the wire decision codec so the constructed decisions are
    *identical* to what the HTTP path builds from ``accepted: false``
    payloads — the twin for every fault scenario below.
    """
    engine = SearchEngine(dataset, config, structural_spans=False)
    event = engine.start(query)
    step = 1
    while isinstance(event, ViewRequest):
        _, decision = decision_from_payload(
            {"step": step, "accepted": False}, event.view
        )
        event = engine.submit(decision)
        step += 1
    return event


async def reject_until_done(client, session_id, event):
    """Drive a live HTTP session to its terminal event with rejects."""
    while event["type"] == "view_request":
        response = await client.expect(
            200,
            "POST",
            f"/sessions/{session_id}/decision",
            {"step": event["step"], "accepted": False},
        )
        event = response["event"]
    return event


class TestKillAndRecover:
    def test_session_survives_server_death(
        self, small_service_dataset, tmp_path
    ):
        """Kill the server after 3 decisions; a new service over the
        same spill directory resumes the session via the API and the
        result is byte-identical to an uninterrupted in-process run."""
        spill_dir = tmp_path / "spill"
        config = SearchConfig(**FAST_CONFIG)
        query = query_of(small_service_dataset, 5)

        def fresh_service():
            store = SpilloverSessionStore(
                byte_budget=TINY_BUDGET, spill_dir=spill_dir
            )
            svc = SessionService(store=store)
            svc.register_dataset("small", small_service_dataset)
            return svc

        # --- first life: create + 3 decisions, then die -----------------
        async def first_life(port):
            async with ServiceClient("127.0.0.1", port) as client:
                created = await client.expect(
                    201,
                    "POST",
                    "/sessions",
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query": query,
                    },
                )
                sid = created["session"]
                event = created["event"]
                for _ in range(3):
                    response = await client.expect(
                        200,
                        "POST",
                        f"/sessions/{sid}/decision",
                        {"step": event["step"], "accepted": False},
                    )
                    event = response["event"]
                    assert event["type"] == "view_request"
                return sid, event

        with ServiceRuntime(fresh_service()) as runtime:
            sid, last_event = run_async(first_life(runtime.port))
        # The runtime is gone; only the spill directory survives.
        assert (spill_dir / f"{sid}{SPILL_SUFFIX}").exists()

        # --- second life: recover and finish over HTTP ------------------
        revived = fresh_service()
        assert revived.recover_sessions() == 1

        async def second_life(port):
            async with ServiceClient("127.0.0.1", port) as client:
                snapshot = await client.expect(200, "GET", f"/sessions/{sid}")
                return snapshot, await reject_until_done(
                    client, sid, {"type": "view_request", "step": snapshot["step"]}
                )

        with ServiceRuntime(revived) as runtime:
            snapshot, final = run_async(second_life(runtime.port))
        assert snapshot["status"] == "awaiting_decision"
        assert snapshot["step"] == last_event["step"]
        assert snapshot["checkpoint_stored"] is True

        twin = reject_all_in_process(small_service_dataset, config, query)
        assert final["type"] == "search_result"
        assert final["reason"] == twin.reason.name
        assert final["neighbor_indices"] == [
            int(i) for i in twin.neighbor_indices
        ]
        assert json.dumps(
            final["result"]["probabilities"]
        ) == json.dumps([float(p) for p in twin.probabilities])

    def test_recovery_without_dataset_marks_failed(
        self, small_service_dataset, tmp_path
    ):
        """A checkpoint whose dataset isn't registered on the new server
        becomes a failed session — visible, not silently dropped."""
        spill_dir = tmp_path / "spill"

        store = SpilloverSessionStore(
            byte_budget=TINY_BUDGET, spill_dir=spill_dir
        )
        svc = SessionService(store=store)
        svc.register_dataset("small", small_service_dataset)

        async def create(port):
            async with ServiceClient("127.0.0.1", port) as client:
                created = await client.expect(
                    201,
                    "POST",
                    "/sessions",
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query_index": 0,
                    },
                )
                return created["session"]

        with ServiceRuntime(svc) as runtime:
            sid = run_async(create(runtime.port))

        bare = SessionService(
            store=SpilloverSessionStore(
                byte_budget=TINY_BUDGET, spill_dir=spill_dir
            )
        )
        assert bare.recover_sessions() == 0

        async def probe(port):
            async with ServiceClient("127.0.0.1", port) as client:
                snapshot = await client.expect(200, "GET", f"/sessions/{sid}")
                decide = await client.request(
                    "POST",
                    f"/sessions/{sid}/decision",
                    {"step": snapshot["step"], "accepted": False},
                )
                return snapshot, decide

        with ServiceRuntime(bare) as runtime:
            snapshot, (status, decoded) = run_async(probe(runtime.port))
        assert snapshot["status"] == "failed"
        assert "not registered" in snapshot["error"]
        assert status == 410
        assert decoded["error"]["code"] == "session_failed"
        # The checkpoint stays on disk for an operator with the dataset.
        assert (spill_dir / f"{sid}{SPILL_SUFFIX}").exists()


class TestCorruptionAndLoss:
    @pytest.mark.parametrize("damage", ["truncate", "garbage"])
    def test_corrupt_checkpoint_is_clean_410(self, spill_server, damage):
        runtime, spill_dir = spill_server

        async def scenario():
            async with ServiceClient("127.0.0.1", runtime.port) as client:
                created = await client.expect(
                    201,
                    "POST",
                    "/sessions",
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query_index": 0,
                    },
                )
                sid = created["session"]
                step = created["event"]["step"]

                # Force the checkpoint to disk, then damage it.
                runtime.service._store.flush_to_disk(sid)
                path = spill_dir / f"{sid}{SPILL_SUFFIX}"
                assert path.exists()
                if damage == "truncate":
                    path.write_bytes(path.read_bytes()[: 40])
                else:
                    path.write_bytes(b"\x00not json at all")

                status, decoded = await client.request(
                    "POST",
                    f"/sessions/{sid}/decision",
                    {"step": step, "accepted": False},
                )
                snapshot = await client.expect(200, "GET", f"/sessions/{sid}")
                again = await client.request(
                    "POST",
                    f"/sessions/{sid}/decision",
                    {"step": step, "accepted": False},
                )
                health = await client.expect(200, "GET", "/healthz")
                # The server is still fully functional: a new session
                # starts and takes a decision.
                fresh = await client.expect(
                    201,
                    "POST",
                    "/sessions",
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query_index": 1,
                    },
                )
                await client.expect(
                    200,
                    "POST",
                    f"/sessions/{fresh['session']}/decision",
                    {"step": fresh["event"]["step"], "accepted": False},
                )
                return sid, status, decoded, snapshot, again, health

        failed_before = counter("sessions.failed").value
        sid, status, decoded, snapshot, again, health = run_async(scenario())

        assert status == 410
        assert decoded["error"]["code"] == "checkpoint_corrupt"
        assert snapshot["status"] == "failed"
        assert snapshot["checkpoint_stored"] is False
        # The second decision reports the terminal failure, not a crash.
        assert again[0] == 410
        assert again[1]["error"]["code"] == "session_failed"
        # The registry counted the failure.
        assert counter("sessions.failed").value == failed_before + 1
        registry_entry = next(
            info
            for info in SESSIONS.snapshot()
            if info["session_id"] == snapshot["registry_id"]
        )
        assert registry_entry["state"] == "failed"
        assert health["sessions"]["failed"] >= 1

    def test_lost_checkpoint_is_clean_410(self, server):
        async def scenario():
            async with ServiceClient("127.0.0.1", server.port) as client:
                created = await client.expect(
                    201,
                    "POST",
                    "/sessions",
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query_index": 2,
                    },
                )
                sid = created["session"]
                step = created["event"]["step"]
                # The store loses the checkpoint (operator wipe, TTL...).
                server.service._store.delete(sid)
                status, decoded = await client.request(
                    "POST",
                    f"/sessions/{sid}/decision",
                    {"step": step, "accepted": False},
                )
                snapshot = await client.expect(200, "GET", f"/sessions/{sid}")
                return status, decoded, snapshot

        status, decoded, snapshot = run_async(scenario())
        assert status == 410
        assert decoded["error"]["code"] == "checkpoint_lost"
        assert snapshot["status"] == "failed"


class TestEvictionTransparency:
    def test_interleaved_sessions_survive_byte_pressure(
        self, spill_server, small_service_dataset
    ):
        """Four sessions interleaved under a 64 KiB budget: the store
        constantly evicts and restores checkpoints, and every session
        still produces exactly its uninterrupted twin's result."""
        runtime, spill_dir = spill_server
        n_sessions = 4
        configs = [
            SearchConfig(**FAST_CONFIG, rng_seed=seed)
            for seed in range(n_sessions)
        ]
        queries = [
            query_of(small_service_dataset, i) for i in range(n_sessions)
        ]

        async def scenario():
            async with ServiceClient("127.0.0.1", runtime.port) as client:
                sids, events = [], []
                for i in range(n_sessions):
                    created = await client.expect(
                        201,
                        "POST",
                        "/sessions",
                        {
                            "dataset": "small",
                            "config": dict(FAST_CONFIG, rng_seed=i),
                            "query": queries[i],
                        },
                    )
                    sids.append(created["session"])
                    events.append(created["event"])
                finals: list[dict | None] = [None] * n_sessions
                saw_disk = 0
                # Round-robin one decision at a time across all sessions.
                while any(f is None for f in finals):
                    for i in range(n_sessions):
                        if finals[i] is not None:
                            continue
                        response = await client.expect(
                            200,
                            "POST",
                            f"/sessions/{sids[i]}/decision",
                            {"step": events[i]["step"], "accepted": False},
                        )
                        event = response["event"]
                        if event["type"] == "view_request":
                            events[i] = event
                        else:
                            finals[i] = event
                    stats = runtime.service._store.stats()
                    saw_disk = max(saw_disk, stats["disk_entries"])
                return finals, saw_disk

        restores_before = counter("service.store.restores").value
        finals, saw_disk = run_async(scenario())

        # Byte pressure really did push live sessions to disk...
        assert saw_disk > 0
        assert counter("service.store.restores").value > restores_before
        # ...and none of them noticed.
        for i, final in enumerate(finals):
            twin = reject_all_in_process(
                small_service_dataset, configs[i], queries[i]
            )
            assert final["reason"] == twin.reason.name
            assert final["neighbor_indices"] == [
                int(j) for j in twin.neighbor_indices
            ]
