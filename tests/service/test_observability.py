"""Request correlation, labeled metrics, access log, SLO surfaces.

Covers the observability contract end to end over real sockets: every
response carries ``X-Request-Id``, one ID joins the access log to the
journal, per-route metrics round-trip between the text and JSON
expositions, and the client's timeout/retry ladder behaves.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import SearchConfig
from repro.interaction.oracle import OracleUser
from repro.obs.labels import parse_labeled_name
from repro.obs.replay import inspect_journal
from repro.service.app import ServiceRuntime, SessionService, route_template
from repro.service.client import (
    RemoteSessionDriver,
    ServiceClient,
    ServiceClientError,
)
from repro.service.http import REQUEST_ID_HEADER

from .conftest import FAST_CONFIG, query_of, run_async

ID_HEADER = REQUEST_ID_HEADER.lower()

#: Every route the service serves, with a representative request.
ALL_ROUTES = [
    ("GET", "/healthz"),
    ("GET", "/metrics"),
    ("GET", "/metrics.json"),
    ("GET", "/datasets"),
    ("GET", "/slo"),
    ("GET", "/sessions"),
    ("GET", "/sessions/sess-missing"),
    ("DELETE", "/sessions/sess-missing"),
    ("POST", "/sessions/sess-missing/decision", {"x": 1}),
    ("POST", "/sessions", {"bad": "body"}),
    ("GET", "/no/such/route"),
]


class TestRouteTemplate:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("/healthz", ("/healthz", None)),
            ("/slo", ("/slo", None)),
            ("/sessions", ("/sessions", None)),
            ("/sessions/sess-ab12", ("/sessions/{id}", "sess-ab12")),
            (
                "/sessions/sess-ab12/decision",
                ("/sessions/{id}/decision", "sess-ab12"),
            ),
            ("/no/such/route", ("(unmatched)", None)),
            ("/sessions/a/b/c", ("(unmatched)", None)),
        ],
    )
    def test_mapping(self, path, expected):
        assert route_template(path) == expected


class TestRequestIdEcho:
    def test_every_route_echoes_client_id(self, server):
        async def scenario():
            seen = []
            async with ServiceClient("127.0.0.1", server.port) as client:
                for method, path, *payload in ALL_ROUTES:
                    await client.request(
                        method, path, payload[0] if payload else None
                    )
                    seen.append(
                        (
                            path,
                            client.last_request_id,
                            client.last_response_headers.get(ID_HEADER),
                        )
                    )
            return seen

        for path, sent, echoed in run_async(scenario()):
            assert echoed == sent, f"no echo for {path}"

    def test_error_envelopes_carry_request_id(self, server):
        async def scenario():
            out = []
            async with ServiceClient("127.0.0.1", server.port) as client:
                for method, path, *payload in ALL_ROUTES:
                    status, decoded = await client.request(
                        method, path, payload[0] if payload else None
                    )
                    if status >= 400:
                        out.append((decoded, client.last_request_id))
            return out

        envelopes = run_async(scenario())
        assert envelopes  # the matrix includes 400s and 404s
        for decoded, sent in envelopes:
            assert decoded["error"]["request_id"] == sent

    async def _raw(self, server, raw_bytes: bytes) -> tuple[int, dict, bytes]:
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        writer.write(raw_bytes)
        await writer.drain()
        status_line = await reader.readuntil(b"\n")
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = (await reader.readuntil(b"\n")).strip()
            if not line:
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = await reader.readexactly(int(headers.get("content-length", 0)))
        writer.close()
        await writer.wait_closed()
        return status, headers, body

    def test_invalid_supplied_id_is_replaced(self, server):
        raw = (
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
            b"X-Request-Id: has spaces!\r\n\r\n"
        )
        status, headers, _ = run_async(self._raw(server, raw))
        assert status == 200
        minted = headers[ID_HEADER]
        assert minted.startswith("req-") and len(minted) == 24

    def test_early_parse_failure_still_stamped(self, server):
        # An oversized header line dies in read_request before any
        # HttpRequest exists; the envelope and header still carry a
        # (freshly minted) request ID.
        raw = (
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
            b"X-Junk: " + b"a" * 20_000 + b"\r\n\r\n"
        )
        status, headers, body = run_async(self._raw(server, raw))
        assert status == 400
        envelope = json.loads(body)["error"]
        assert envelope["code"] == "header_too_long"
        assert envelope["request_id"] == headers[ID_HEADER]
        assert headers[ID_HEADER].startswith("req-")


class TestMetricsSurfaces:
    def test_labeled_metrics_text_json_round_trip(self, server):
        async def scenario():
            async with ServiceClient("127.0.0.1", server.port) as client:
                await client.expect(200, "GET", "/healthz")
                doc = await client.expect(200, "GET", "/metrics.json")
                _, text = await client.request("GET", "/metrics")
                return doc, text.decode("utf-8")

        doc, text = run_async(scenario())
        name = 'service.requests.by_route{route="/healthz",status="2xx"}'
        snap = doc["metrics"][name]
        assert snap["type"] == "counter" and snap["value"] >= 1
        base, labels = parse_labeled_name(name)
        assert base == "service.requests.by_route"
        assert labels == {"route": "/healthz", "status": "2xx"}
        # The same series appears in the Prometheus exposition with
        # the labels as labels (value may have grown by the /metrics
        # request itself landing first — compare >=).
        line = next(
            ln
            for ln in text.splitlines()
            if ln.startswith(
                'repro_service_requests_by_route_total{route="/healthz"'
            )
        )
        assert float(line.rsplit(" ", 1)[1]) >= snap["value"]

    def test_metrics_exposition_includes_slo_gauges(self, server):
        async def scenario():
            async with ServiceClient("127.0.0.1", server.port) as client:
                await client.expect(200, "GET", "/healthz")
                _, text = await client.request("GET", "/metrics")
                return text.decode("utf-8")

        text = run_async(scenario())
        assert "# TYPE repro_slo_burn_rate gauge" in text
        assert 'repro_slo_state{route="/healthz"}' in text
        assert text.endswith("# EOF\n")

    def test_slo_endpoint_shape(self, server):
        async def scenario():
            async with ServiceClient("127.0.0.1", server.port) as client:
                await client.expect(200, "GET", "/healthz")
                return await client.expect(200, "GET", "/slo")

        doc = run_async(scenario())
        assert set(doc) == {"windows", "burn_thresholds", "routes", "state"}
        assert set(doc["routes"]) == {
            "/sessions",
            "/sessions/{id}/decision",
            "/sessions/{id}",
            "/healthz",
        }
        health_report = doc["routes"]["/healthz"]
        assert health_report["windows"]["fast"]["requests"] >= 1
        assert health_report["state"] == "ok"

    def test_healthz_folds_in_slo_and_store_tiers(self, server):
        async def scenario():
            async with ServiceClient("127.0.0.1", server.port) as client:
                return await client.expect(200, "GET", "/healthz")

        payload = run_async(scenario())
        assert payload["slo"]["state"] == "ok"
        assert "/sessions/{id}/decision" in payload["slo"]["routes"]
        for key in (
            "memory_entries",
            "memory_bytes",
            "disk_entries",
            "evictions",
            "restores",
        ):
            assert key in payload["store"]


class TestAccessLogAndJournalJoin:
    def test_one_id_joins_log_and_journal(
        self, tmp_path, small_service_dataset
    ):
        log_path = tmp_path / "access.jsonl"
        service = SessionService(
            journal_dir=tmp_path / "journals", access_log=log_path
        )
        service.register_dataset("small", small_service_dataset)
        with ServiceRuntime(service) as runtime:

            async def scenario():
                async with ServiceClient(
                    "127.0.0.1", runtime.port, trace_id="ab" * 16
                ) as client:
                    created = await client.expect(
                        201,
                        "POST",
                        "/sessions",
                        {
                            "dataset": "small",
                            "config": FAST_CONFIG,
                            "query": query_of(small_service_dataset),
                        },
                    )
                    create_id = client.last_request_id
                    await client.request("GET", "/no/such/route")
                    miss_id = client.last_request_id
                    info = await client.expect(
                        200, "GET", f"/sessions/{created['session']}"
                    )
                    return created["session"], create_id, miss_id, info

            session_id, create_id, miss_id, info = run_async(scenario())
        service.close()

        entries = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(entries) == 3
        by_id = {e["request_id"]: e for e in entries}
        create_entry = by_id[create_id]
        assert create_entry["method"] == "POST"
        assert create_entry["route"] == "/sessions"
        assert create_entry["status"] == 201
        assert create_entry["session"] == session_id
        assert create_entry["trace_id"] == "ab" * 16
        assert create_entry["bytes_in"] > 0 and create_entry["bytes_out"] > 0
        assert create_entry["latency_ms"] > 0
        miss_entry = by_id[miss_id]
        assert miss_entry["route"] == "(unmatched)"
        assert miss_entry["status"] == 404
        assert miss_entry["error_code"] == "unknown_path"
        for entry in entries:
            assert {
                "ts",
                "method",
                "path",
                "route",
                "status",
                "latency_ms",
                "bytes_in",
                "bytes_out",
                "request_id",
            } <= set(entry)

        # The same create ID is stamped into the session's journal...
        journal_path = info["journal_path"]
        assert journal_path is not None
        ctx_ids = set()
        for line in open(journal_path, encoding="utf-8"):
            record = json.loads(line)
            ctx = record.get("payload", {}).get("ctx")
            if isinstance(ctx, dict) and "request_id" in ctx:
                ctx_ids.add(ctx["request_id"])
        assert ctx_ids == {create_id}
        # ...and surfaces in the inspect timeline.
        assert f"req={create_id}" in inspect_journal(journal_path)

    def test_decision_requests_stamp_their_own_ids(
        self, tmp_path, small_service_dataset
    ):
        service = SessionService(journal_dir=tmp_path / "journals")
        service.register_dataset("small", small_service_dataset)
        with ServiceRuntime(service) as runtime:

            async def scenario():
                async with ServiceClient(
                    "127.0.0.1", runtime.port
                ) as client:
                    driver = RemoteSessionDriver(
                        client,
                        user=OracleUser(small_service_dataset, 0),
                        config=SearchConfig(**FAST_CONFIG),
                    )
                    final = await driver.run("small", query_index=0)
                    assert final["type"] == "search_result"
                    info = await client.expect(
                        200, "GET", f"/sessions/{driver.session_id}"
                    )
                    return driver.steps, info

            steps, info = run_async(scenario())
        service.close()

        ctx_ids = set()
        for line in open(info["journal_path"], encoding="utf-8"):
            record = json.loads(line)
            ctx = record.get("payload", {}).get("ctx")
            if isinstance(ctx, dict) and "request_id" in ctx:
                ctx_ids.add(ctx["request_id"])
        # One ID per HTTP request that touched the engine: the create
        # plus every decision.
        assert len(ctx_ids) == steps + 1


class TestClientResilience:
    def test_connect_timeout_maps_to_envelope(self, monkeypatch):
        async def never_connects(*args, **kwargs):
            await asyncio.sleep(60)

        monkeypatch.setattr(asyncio, "open_connection", never_connects)

        async def scenario():
            client = ServiceClient(
                "127.0.0.1", 1, connect_timeout=0.05
            )
            with pytest.raises(ServiceClientError) as excinfo:
                await client.connect()
            return excinfo.value

        error = run_async(scenario())
        assert error.status == 504
        assert error.code == "client_connect_timeout"

    def test_read_timeout_closes_connection(self):
        async def scenario():
            async def stall(reader, writer):
                await reader.read(100)
                await asyncio.sleep(60)

            server = await asyncio.start_server(stall, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ServiceClient("127.0.0.1", port, read_timeout=0.1)
            try:
                with pytest.raises(ServiceClientError) as excinfo:
                    await client.request("GET", "/healthz")
                closed = client._reader is None
            finally:
                server.close()
                await server.wait_closed()
            return excinfo.value, closed

        error, closed = run_async(scenario())
        assert error.code == "client_timeout"
        assert closed  # framing untrusted after a timeout

    @staticmethod
    async def _flaky_server(resets: int):
        """A server that resets the first *resets* connections, then
        serves a minimal JSON 200 forever."""
        state = {"connections": 0}

        async def handler(reader, writer):
            state["connections"] += 1
            if state["connections"] <= resets:
                writer.close()
                return
            await reader.readuntil(b"\r\n\r\n")
            body = b'{"ok": true}'
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n"
                + body
            )
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        return server, server.sockets[0].getsockname()[1]

    def test_idempotent_get_retries_through_resets(self):
        async def scenario():
            server, port = await self._flaky_server(resets=2)
            try:
                client = ServiceClient(
                    "127.0.0.1", port, retries=2, backoff=0.0
                )
                status, decoded = await client.request("GET", "/x")
                await client.close()
            finally:
                server.close()
                await server.wait_closed()
            return status, decoded

        status, decoded = run_async(scenario())
        assert status == 200 and decoded == {"ok": True}

    def test_post_keeps_reconnect_once_only(self):
        async def scenario():
            server, port = await self._flaky_server(resets=2)
            try:
                client = ServiceClient(
                    "127.0.0.1", port, retries=2, backoff=0.0
                )
                with pytest.raises(
                    (
                        ConnectionResetError,
                        BrokenPipeError,
                        asyncio.IncompleteReadError,
                    )
                ):
                    await client.request("POST", "/x", {"a": 1})
            finally:
                server.close()
                await server.wait_closed()

        run_async(scenario())

    def test_request_id_stable_across_retries(self):
        async def scenario():
            server, port = await self._flaky_server(resets=1)
            try:
                client = ServiceClient(
                    "127.0.0.1", port, retries=2, backoff=0.0
                )
                await client.request("GET", "/x")
                rid = client.last_request_id
                await client.close()
            finally:
                server.close()
                await server.wait_closed()
            return rid

        rid = run_async(scenario())
        assert rid is not None and rid.startswith("req-")
