"""Fixtures for the session-service suites: a live server on a random
port, shared datasets, and a sync->async bridge.

The server runs a real ``asyncio.start_server`` loop on a background
thread (:class:`~repro.service.app.ServiceRuntime`); clients talk to
it over real TCP sockets from a *second* event loop created per test
via :func:`run_async` — the same topology the load benchmark uses.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.obs.replay import dataset_from_provenance
from repro.service.app import ServiceRuntime, SessionService
from repro.service.store import SpilloverSessionStore

#: The golden journal's dataset provenance (tests/golden/).
GOLDEN_PROVENANCE = {"kind": "case1", "seed": 7, "n_points": 500}
#: The golden journal's engine config.
GOLDEN_CONFIG = SearchConfig(support=12)

#: A fast config for multi-session tests (few, cheap iterations).
FAST_CONFIG = dict(
    support=10,
    grid_resolution=30,
    min_major_iterations=1,
    max_major_iterations=1,
    projection_restarts=2,
)


def run_async(coroutine: Awaitable[Any]) -> Any:
    """Run a client coroutine against the background server."""
    return asyncio.run(coroutine)


@pytest.fixture(scope="session")
def golden_dataset():
    """The dataset behind tests/golden/session_journal_golden.jsonl."""
    return dataset_from_provenance(GOLDEN_PROVENANCE)


@pytest.fixture(scope="session")
def small_service_dataset():
    """A small case1 dataset for cheap many-session tests."""
    return dataset_from_provenance(
        {"kind": "case1", "seed": 3, "n_points": 240}
    )


@pytest.fixture
def service(golden_dataset, small_service_dataset):
    """A fresh in-memory service with both test datasets registered."""
    svc = SessionService()
    svc.register_dataset("golden", golden_dataset)
    svc.register_dataset("small", small_service_dataset)
    return svc


@pytest.fixture
def server(service):
    """The service live on an ephemeral port; yields the runtime."""
    with ServiceRuntime(service) as runtime:
        yield runtime


@pytest.fixture
def spill_server(golden_dataset, small_service_dataset, tmp_path):
    """A server whose store spills to disk under a tiny byte budget.

    Yields ``(runtime, spill_dir)``; a FAST_CONFIG checkpoint is ~6 KiB,
    so the 10 KiB budget holds exactly one hot checkpoint — any second
    concurrent session lives on disk, driving the fault and eviction
    suites through constant evict/restore cycles.
    """
    spill_dir = tmp_path / "spill"
    store = SpilloverSessionStore(byte_budget=10 * 1024, spill_dir=spill_dir)
    svc = SessionService(store=store)
    svc.register_dataset("golden", golden_dataset)
    svc.register_dataset("small", small_service_dataset)
    with ServiceRuntime(svc) as runtime:
        yield runtime, spill_dir


def query_of(dataset, index: int = 0) -> list[float]:
    """A dataset point as a JSON-ready query vector."""
    return [float(v) for v in np.asarray(dataset.points[index], dtype=float)]
