"""Protocol-conformance suite for the session service.

Two layers:

* **Golden-journal conformance** — the committed flight-recorder
  journal is replayed *through the HTTP API*: every view event the
  server returns must carry digests identical to the journaled ones,
  and the terminal result must be byte-identical to an in-process
  engine run of the same decision stream.
* **Shape validation** — JSON-schema-style assertions over every
  request/response pair, including the error envelopes (unknown
  session -> 404, malformed decision -> 400, decided-twice -> 409).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import SearchEngine
from repro.core.serialization import result_to_dict
from repro.core.search import drive
from repro.interaction.oracle import OracleUser
from repro.obs.journal import read_journal
from repro.service.client import ServiceClient, ServiceClientError

from tests.service.conftest import (
    FAST_CONFIG,
    GOLDEN_CONFIG,
    query_of,
    run_async,
)

GOLDEN_JOURNAL = "tests/golden/session_journal_golden.jsonl"

#: Required keys of a digest view event (the journal's view payload
#: plus the wire framing).
VIEW_EVENT_KEYS = {
    "type",
    "session",
    "step",
    "major",
    "minor",
    "live_count",
    "live_digest",
    "basis_digest",
    "density_digest",
    "rng_digest",
    "stats",
}

RESULT_EVENT_KEYS = {"type", "session", "reason", "support", "neighbor_indices", "result"}

ERROR_KEYS = {"status", "code", "message", "request_id"}


def _client_for(server) -> ServiceClient:
    return ServiceClient("127.0.0.1", server.port)


async def _create(client, body):
    return await client.expect(201, "POST", "/sessions", body)


def _assert_error(decoded, status, code=None):
    assert set(decoded) == {"error"}
    envelope = decoded["error"]
    assert set(envelope) == ERROR_KEYS
    assert envelope["status"] == status
    if code is not None:
        assert envelope["code"] == code


class TestGoldenJournalConformance:
    @pytest.fixture(scope="class")
    def golden_records(self):
        return read_journal(GOLDEN_JOURNAL)

    def test_http_replay_matches_journal_and_in_process(
        self, server, golden_dataset, golden_records
    ):
        """The full golden decision stream over HTTP: every view event
        digest-identical to the journal, terminal result byte-identical
        to an in-process engine run."""
        start = next(r for r in golden_records if r.type == "session_start")
        views = [r for r in golden_records if r.type == "view"]
        decisions = [r for r in golden_records if r.type == "decision"]
        journaled_result = next(
            r for r in golden_records if r.type == "result"
        )
        assert len(views) == len(decisions)

        async def replay():
            async with _client_for(server) as client:
                created = await _create(
                    client,
                    {
                        "dataset": "golden",
                        "config": start.payload["config"],
                        "query": start.payload["query"],
                        "view": "digest",
                    },
                )
                session_id = created["session"]
                event = created["event"]
                transcript = [event]
                for decision in decisions:
                    payload = {
                        key: decision.payload[key]
                        for key in (
                            "step",
                            "accepted",
                            "selected_indices",
                            "threshold",
                            "weight",
                            "note",
                        )
                    }
                    response = await client.expect(
                        200,
                        "POST",
                        f"/sessions/{session_id}/decision",
                        payload,
                    )
                    event = response["event"]
                    transcript.append(event)
                return session_id, transcript

        session_id, transcript = run_async(replay())
        final = transcript.pop()

        # Every HTTP view event carries the journaled digests exactly.
        assert len(transcript) == len(views)
        for wire_event, record in zip(transcript, views):
            assert wire_event["type"] == "view_request"
            assert wire_event["session"] == session_id
            for key, value in record.payload.items():
                assert wire_event[key] == value, (
                    f"step {record.payload['step']}: field {key!r} diverged"
                )

        # The terminal event agrees with the journaled result record...
        assert final["type"] == "search_result"
        assert final["reason"] == journaled_result.payload["reason"]
        assert final["support"] == journaled_result.payload["support"]
        assert (
            final["neighbor_indices"]
            == journaled_result.payload["neighbor_indices"]
        )
        probabilities = np.asarray(
            final["result"]["probabilities"], dtype=float
        )
        from repro.obs.journal import array_digest

        assert (
            array_digest(probabilities)
            == journaled_result.payload["probabilities_digest"]
        )

        # ...and is byte-identical to in-process execution.
        engine = SearchEngine(
            golden_dataset, GOLDEN_CONFIG, structural_spans=False
        )
        query_index = int(golden_dataset.cluster_indices(0)[0])
        twin = drive(
            engine,
            golden_dataset.points[query_index],
            OracleUser(golden_dataset, query_index),
        )
        local = result_to_dict(
            twin, top_k_probabilities=None, include_bases=True
        )
        assert json.dumps(final["result"], sort_keys=True) == json.dumps(
            local, sort_keys=True
        )


class TestResponseShapes:
    def test_create_session_shape(self, server, small_service_dataset):
        async def scenario():
            async with _client_for(server) as client:
                created = await _create(
                    client,
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query": query_of(small_service_dataset),
                        "view": "full",
                    },
                )
                return created

        created = run_async(scenario())
        assert set(created) == {"session", "event"}
        assert created["session"].startswith("sess-")
        event = created["event"]
        assert set(event) == VIEW_EVENT_KEYS | {"view"}
        assert event["type"] == "view_request"
        assert event["step"] == 1 and event["major"] == 0 and event["minor"] == 0
        for digest_key in ("live_digest", "basis_digest", "density_digest", "rng_digest"):
            assert (
                isinstance(event[digest_key], str)
                and len(event[digest_key]) == 64
            )
        view = event["view"]
        assert set(view) == {
            "projected_points",
            "query_2d",
            "basis",
            "live_indices",
            "total_points",
        }
        assert len(view["projected_points"]) == event["live_count"]
        assert len(view["live_indices"]) == event["live_count"]
        assert len(view["query_2d"]) == 2
        assert view["total_points"] == small_service_dataset.size

    def test_digest_mode_omits_view_detail(self, server, small_service_dataset):
        async def scenario():
            async with _client_for(server) as client:
                return await _create(
                    client,
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query": query_of(small_service_dataset),
                    },
                )

        created = run_async(scenario())
        assert set(created["event"]) == VIEW_EVENT_KEYS

    def test_introspection_shape(self, server, small_service_dataset):
        async def scenario():
            async with _client_for(server) as client:
                created = await _create(
                    client,
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query": query_of(small_service_dataset),
                    },
                )
                sid = created["session"]
                snapshot = await client.expect(200, "GET", f"/sessions/{sid}")
                listing = await client.expect(200, "GET", "/sessions")
                health = await client.expect(200, "GET", "/healthz")
                return sid, snapshot, listing, health

        sid, snapshot, listing, health = run_async(scenario())
        assert snapshot["session"] == sid
        assert snapshot["status"] == "awaiting_decision"
        assert snapshot["step"] == 1
        assert snapshot["checkpoint_stored"] is True
        assert snapshot["event"]["type"] == "view_request"
        assert isinstance(snapshot["registry_id"], str)
        assert {"support", "rng_seed", "grid_resolution", "bandwidth_scale"} == set(
            snapshot["config"]
        )
        assert any(s["session"] == sid for s in listing["sessions"])
        assert health["status"] == "ok"
        assert {"status", "uptime_seconds", "schema_version", "datasets",
                "sessions", "registry", "store", "slo"} == set(health)
        assert health["sessions"]["awaiting_decision"] >= 1
        assert set(health["registry"]) == {
            "live", "suspended", "finished", "failed",
        }

    def test_delete_session(self, server, small_service_dataset):
        async def scenario():
            async with _client_for(server) as client:
                created = await _create(
                    client,
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query": query_of(small_service_dataset),
                    },
                )
                sid = created["session"]
                status, body = await client.request(
                    "DELETE", f"/sessions/{sid}"
                )
                after, after_body = await client.request(
                    "GET", f"/sessions/{sid}"
                )
                return status, body, after, after_body

        status, body, after, after_body = run_async(scenario())
        assert status == 204 and body in (None, b"")
        assert after == 404
        _assert_error(after_body, 404, "unknown_session")

    def test_metrics_endpoints(self, server):
        async def scenario():
            async with _client_for(server) as client:
                status_text, text = await client.request("GET", "/metrics")
                status_json, payload = await client.request(
                    "GET", "/metrics.json"
                )
                return status_text, text, status_json, payload

        status_text, text, status_json, payload = run_async(scenario())
        assert status_text == 200
        body = text.decode("utf-8") if isinstance(text, bytes) else text
        assert body.rstrip().endswith("# EOF")
        assert "repro_service_requests_total" in body
        assert status_json == 200
        assert payload["format"] == "repro.metrics"
        assert "service.requests" in payload["metrics"]


class TestErrorEnvelopes:
    def test_unknown_session_is_404(self, server):
        async def scenario():
            async with _client_for(server) as client:
                get = await client.request("GET", "/sessions/sess-missing")
                decide = await client.request(
                    "POST",
                    "/sessions/sess-missing/decision",
                    {"step": 1, "accepted": False},
                )
                delete = await client.request(
                    "DELETE", "/sessions/sess-missing"
                )
                return get, decide, delete

        get, decide, delete = run_async(scenario())
        for status, decoded in (get, decide, delete):
            assert status == 404
            _assert_error(decoded, 404, "unknown_session")

    def test_unknown_dataset_is_404(self, server):
        async def scenario():
            async with _client_for(server) as client:
                return await client.request(
                    "POST",
                    "/sessions",
                    {"dataset": "nope", "query_index": 0},
                )

        status, decoded = run_async(scenario())
        assert status == 404
        _assert_error(decoded, 404, "unknown_dataset")

    def test_unknown_path_is_404(self, server):
        status, decoded = run_async(self._simple(server, "GET", "/nope"))
        assert status == 404
        _assert_error(decoded, 404, "unknown_path")

    def test_wrong_method_is_405(self, server):
        status, decoded = run_async(
            self._simple(server, "PUT", "/sessions", {})
        )
        assert status == 405
        _assert_error(decoded, 405, "method_not_allowed")

    @staticmethod
    async def _simple(server, method, path, payload=None):
        async with ServiceClient("127.0.0.1", server.port) as client:
            return await client.request(method, path, payload)

    @pytest.mark.parametrize(
        "body,code",
        [
            ({"query_index": 0}, "malformed_body"),  # no dataset
            ({"dataset": "small"}, "malformed_body"),  # no query
            (
                {"dataset": "small", "query_index": 0, "query": [1.0]},
                "malformed_body",  # both query forms
            ),
            (
                {"dataset": "small", "query_index": 10**6},
                "malformed_body",  # out of range
            ),
            (
                {"dataset": "small", "query": [1.0, 2.0]},
                "malformed_body",  # wrong dimensionality
            ),
            (
                {"dataset": "small", "query_index": 0, "view": "sometimes"},
                "malformed_body",
            ),
            (
                {
                    "dataset": "small",
                    "query_index": 0,
                    "config": {"support": -3},
                },
                "malformed_config",
            ),
            (
                {
                    "dataset": "small",
                    "query_index": 0,
                    "config": {"no_such_knob": 1},
                },
                "malformed_config",
            ),
        ],
    )
    def test_malformed_create_is_400(self, server, body, code):
        status, decoded = run_async(
            self._simple(server, "POST", "/sessions", body)
        )
        assert status == 400
        _assert_error(decoded, 400, code)

    def test_unparseable_json_is_400(self, server):
        async def scenario():
            async with _client_for(server) as client:
                reader, writer = client._reader, client._writer
                raw = b"this is not json"
                head = (
                    "POST /sessions HTTP/1.1\r\n"
                    f"Content-Length: {len(raw)}\r\n"
                    "\r\n"
                ).encode()
                writer.write(head + raw)
                await writer.drain()
                status_line = await reader.readuntil(b"\n")
                status = int(status_line.split()[1])
                while (await reader.readuntil(b"\n")).strip():
                    pass
                return status

        assert run_async(scenario()) == 400

    def test_malformed_decisions_are_400(self, server, small_service_dataset):
        async def scenario():
            async with _client_for(server) as client:
                created = await _create(
                    client,
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query": query_of(small_service_dataset),
                    },
                )
                sid = created["session"]
                step = created["event"]["step"]
                bad_bodies = [
                    {"step": "one", "accepted": True},  # step not int
                    {"step": step},  # accepted missing
                    {"step": step, "accepted": "yes"},  # accepted not bool
                    {
                        "step": step,
                        "accepted": True,
                        "selected_indices": ["a"],
                    },
                    {
                        "step": step,
                        "accepted": True,
                        # out of the live set
                        "selected_indices": [10**7],
                    },
                    {
                        "step": step,
                        "accepted": False,
                        "weight": -1.0,
                    },
                    {
                        "step": step,
                        "accepted": False,
                        "threshold": "high",
                    },
                    {
                        "step": step,
                        "accepted": False,
                        "note": 42,
                    },
                ]
                results = []
                for body in bad_bodies:
                    results.append(
                        await client.request(
                            "POST", f"/sessions/{sid}/decision", body
                        )
                    )
                # The session survives all of it.
                snapshot = await client.expect(200, "GET", f"/sessions/{sid}")
                return results, snapshot

        results, snapshot = run_async(scenario())
        for status, decoded in results:
            assert status == 400
            _assert_error(decoded, 400, "malformed_decision")
        assert snapshot["status"] == "awaiting_decision"

    def test_decided_twice_is_409(self, server, small_service_dataset):
        async def scenario():
            async with _client_for(server) as client:
                created = await _create(
                    client,
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query": query_of(small_service_dataset),
                    },
                )
                sid = created["session"]
                step = created["event"]["step"]
                reject = {"step": step, "accepted": False}
                await client.expect(
                    200, "POST", f"/sessions/{sid}/decision", reject
                )
                # Same step again: stale.
                replayed = await client.request(
                    "POST", f"/sessions/{sid}/decision", reject
                )
                ahead = await client.request(
                    "POST",
                    f"/sessions/{sid}/decision",
                    {"step": step + 10, "accepted": False},
                )
                return replayed, ahead

        replayed, ahead = run_async(scenario())
        assert replayed[0] == 409
        _assert_error(replayed[1], 409, "already_decided")
        assert ahead[0] == 409
        _assert_error(ahead[1], 409, "future_step")

    def test_decision_after_finish_is_409(
        self, server, small_service_dataset
    ):
        async def scenario():
            async with _client_for(server) as client:
                created = await _create(
                    client,
                    {
                        "dataset": "small",
                        "config": FAST_CONFIG,
                        "query": query_of(small_service_dataset),
                    },
                )
                sid = created["session"]
                event = created["event"]
                while event["type"] == "view_request":
                    response = await client.expect(
                        200,
                        "POST",
                        f"/sessions/{sid}/decision",
                        {"step": event["step"], "accepted": False},
                    )
                    event = response["event"]
                assert set(event) == RESULT_EVENT_KEYS
                late = await client.request(
                    "POST",
                    f"/sessions/{sid}/decision",
                    {"step": event.get("step", 0), "accepted": False},
                )
                snapshot = await client.expect(200, "GET", f"/sessions/{sid}")
                return late, snapshot

        late, snapshot = run_async(scenario())
        assert late[0] == 409
        _assert_error(late[1], 409, "already_finished")
        assert snapshot["status"] == "finished"
        assert snapshot["checkpoint_stored"] is False

    def test_client_error_carries_envelope(self, server):
        async def scenario():
            async with _client_for(server) as client:
                await client.expect(200, "GET", "/sessions/sess-missing")

        with pytest.raises(ServiceClientError) as excinfo:
            run_async(scenario())
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_session"
