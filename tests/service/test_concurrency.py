"""Concurrency smoke test: 200 interleaved sessions, zero state bleed.

200 remote drivers run concurrently on one client event loop against a
live server, each with its own RNG seed and query.  Isolation is
asserted two ways:

* every session's *first-view* RNG digest is unique — engines seeded
  differently never share a random stream, so any cross-session bleed
  of engine state would collide or scramble digests;
* every terminal result is byte-identical to a sequential in-process
  twin of the same seed and query — the concurrent interleaving (and
  the checkpoint/resume cycle behind every single decision) changed
  nothing.
"""

from __future__ import annotations

import asyncio
import json

from repro.core.config import SearchConfig
from repro.core.engine import SearchEngine
from repro.core.search import drive
from repro.core.serialization import result_to_dict
from repro.interaction.heuristic import HeuristicUser
from repro.service.client import RemoteSessionDriver, ServiceClient

from tests.service.conftest import FAST_CONFIG, run_async

N_SESSIONS = 200


class TestInterleavedSessions:
    def test_200_sessions_no_state_bleed(self, server, small_service_dataset):
        dataset = small_service_dataset

        async def one_session(port: int, i: int):
            async with ServiceClient("127.0.0.1", port) as client:
                driver = RemoteSessionDriver(
                    client,
                    user=HeuristicUser(),
                    config=SearchConfig(**FAST_CONFIG, rng_seed=i),
                )
                final = await driver.run(
                    "small", query_index=i % dataset.size
                )
                return driver, final

        async def fan_out(port: int):
            return await asyncio.gather(
                *(one_session(port, i) for i in range(N_SESSIONS))
            )

        outcomes = run_async(fan_out(server.port))

        # Everyone finished; nothing raised, nothing hung.
        assert len(outcomes) == N_SESSIONS
        for driver, final in outcomes:
            assert final["type"] == "search_result"
            assert driver.steps >= 1
            assert len(driver.rng_digests) == driver.steps

        # Distinct seeds => globally distinct first-view RNG digests.
        first_digests = {driver.rng_digests[0] for driver, _ in outcomes}
        assert len(first_digests) == N_SESSIONS

        # Every concurrent run equals its sequential in-process twin,
        # byte for byte.
        for i, (_, final) in enumerate(outcomes):
            engine = SearchEngine(
                dataset,
                SearchConfig(**FAST_CONFIG, rng_seed=i),
                structural_spans=False,
            )
            twin = drive(
                engine,
                dataset.points[i % dataset.size],
                HeuristicUser(),
            )
            local = result_to_dict(
                twin, top_k_probabilities=None, include_bases=True
            )
            assert json.dumps(final["result"], sort_keys=True) == json.dumps(
                local, sort_keys=True
            ), f"session {i} diverged from its sequential twin"

    def test_sessions_do_not_share_live_sets(self, server, small_service_dataset):
        """Two same-seed sessions advancing in strict lockstep keep
        independent live sets: A accepts a 25-point subset every view,
        B rejects everything — after the major-iteration boundary
        prunes A down, B must still see the full dataset."""
        two_majors = dict(FAST_CONFIG, rng_seed=99, max_major_iterations=2)

        async def scenario(port: int):
            async with ServiceClient("127.0.0.1", port) as a_client, \
                    ServiceClient("127.0.0.1", port) as b_client:
                sessions = {}
                for key, client in (("a", a_client), ("b", b_client)):
                    created = await client.expect(
                        201,
                        "POST",
                        "/sessions",
                        {
                            "dataset": "small",
                            "config": two_majors,
                            "query_index": 0,
                            "view": "full",
                        },
                    )
                    sessions[key] = [client, created["session"], created["event"]]

                async def advance(key):
                    client, sid, event = sessions[key]
                    if key == "a":
                        subset = sorted(event["view"]["live_indices"][:25])
                        body = {
                            "step": event["step"],
                            "accepted": True,
                            "selected_indices": subset,
                            "threshold": 0.5,
                        }
                    else:
                        body = {"step": event["step"], "accepted": False}
                    response = await client.expect(
                        200, "POST", f"/sessions/{sid}/decision", body
                    )
                    sessions[key][2] = response["event"]

                # Strictly alternate single decisions until both
                # sessions have crossed into their second major
                # iteration (where A's prune has taken effect).
                while any(
                    sessions[key][2]["type"] == "view_request"
                    and sessions[key][2]["major"] < 1
                    for key in ("a", "b")
                ):
                    for key in ("a", "b"):
                        if (
                            sessions[key][2]["type"] == "view_request"
                            and sessions[key][2]["major"] < 1
                        ):
                            await advance(key)
                return sessions["a"][2], sessions["b"][2]

        a_event, b_event = run_async(scenario(server.port))
        assert a_event["major"] == 1 and b_event["major"] == 1
        assert a_event["live_count"] == 25
        assert b_event["live_count"] == small_service_dataset.size
        assert a_event["live_digest"] != b_event["live_digest"]
