"""Unit tests for the baseline searchers."""

import numpy as np
import pytest

from repro.baselines.full_dim import FullDimensionalKNN
from repro.baselines.projected import ProjectedNN
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.geometry.distances import manhattan_distance


class TestFullDimensionalKNN:
    def test_basic_query(self, rng):
        points = rng.normal(size=(100, 5))
        ds = Dataset(points=points)
        knn = FullDimensionalKNN(ds)
        result = knn.query(points[0], 5)
        assert result.neighbor_indices.size == 5
        assert result.neighbor_indices[0] == 0  # itself, distance 0
        assert np.all(np.diff(result.distances) >= 0)

    def test_exclude_index(self, rng):
        points = rng.normal(size=(50, 3))
        ds = Dataset(points=points)
        knn = FullDimensionalKNN(ds)
        result = knn.query(points[7], 5, exclude_index=7)
        assert 7 not in result.neighbor_indices.tolist()

    def test_custom_metric(self, rng):
        points = np.array([[1.0, 1.0], [1.5, 0.0], [5.0, 5.0]])
        ds = Dataset(points=points)
        knn = FullDimensionalKNN(ds, metric=manhattan_distance)
        result = knn.query(np.zeros(2), 1)
        assert result.neighbor_indices[0] == 1

    def test_k_validation(self, rng):
        ds = Dataset(points=rng.normal(size=(10, 2)))
        with pytest.raises(ConfigurationError):
            FullDimensionalKNN(ds).query(np.zeros(2), 0)

    def test_dataset_property(self, rng):
        ds = Dataset(points=rng.normal(size=(10, 2)))
        assert FullDimensionalKNN(ds).dataset is ds


class TestProjectedNN:
    @pytest.fixture
    def projected_data(self, small_clustered):
        return small_clustered.dataset

    def test_basic_query(self, projected_data):
        pnn = ProjectedNN(projected_data)
        qi = int(projected_data.cluster_indices(0)[0])
        result = pnn.query(projected_data.points[qi], 10)
        assert result.neighbor_indices.size == 10

    def test_neighbors_mostly_cluster_members(self, projected_data):
        qi = int(projected_data.cluster_indices(0)[0])
        pnn = ProjectedNN(projected_data, support=30)
        result = pnn.query(projected_data.points[qi], 20, exclude_index=qi)
        labels = projected_data.labels[result.neighbor_indices]
        assert (labels == projected_data.label_of(qi)).mean() > 0.5

    def test_find_projection_dim(self, projected_data):
        pnn = ProjectedNN(projected_data, projection_dim=4)
        qi = int(projected_data.cluster_indices(0)[0])
        sub = pnn.find_projection(projected_data.points[qi])
        assert sub.dim == 4

    def test_axis_parallel(self, projected_data):
        pnn = ProjectedNN(projected_data, axis_parallel=True)
        qi = int(projected_data.cluster_indices(1)[0])
        sub = pnn.find_projection(projected_data.points[qi])
        assert sub.is_axis_parallel()

    def test_validation(self, projected_data):
        with pytest.raises(ConfigurationError):
            ProjectedNN(projected_data, projection_dim=1)
        with pytest.raises(ConfigurationError):
            ProjectedNN(projected_data, projection_dim=99)
        with pytest.raises(ConfigurationError):
            ProjectedNN(projected_data).query(np.zeros(10), 0)

    def test_exclude_index(self, projected_data):
        pnn = ProjectedNN(projected_data)
        qi = int(projected_data.cluster_indices(0)[0])
        result = pnn.query(projected_data.points[qi], 5, exclude_index=qi)
        assert qi not in result.neighbor_indices.tolist()
