"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("demo", "diagnose", "session", "info"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_demo_options(self):
        args = build_parser().parse_args(
            ["demo", "--points", "500", "--support", "10", "--seed", "1"]
        )
        assert args.points == 500
        assert args.support == 10
        assert args.seed == 1


class TestInfo:
    def test_prints_version_and_defaults(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "support" in out
        assert "bandwidth_scale" in out


class TestDemo:
    def test_runs_and_archives(self, capsys, tmp_path):
        archive = tmp_path / "run.json"
        code = main(
            [
                "demo",
                "--points",
                "600",
                "--support",
                "12",
                "--save",
                str(archive),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision" in out
        payload = json.loads(archive.read_text())
        assert "session" in payload
        assert payload["session"]["total_views"] > 0


class TestCheckpointResume:
    DEMO = ["demo", "--points", "500", "--support", "12", "--seed", "7"]

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        ckpt = tmp_path / "run.ckpt.json"
        code = main(
            self.DEMO + ["--checkpoint", str(ckpt), "--checkpoint-step", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoint written to" in out
        assert "--resume" in out
        payload = json.loads(ckpt.read_text())
        assert payload["format"] == "repro.engine-checkpoint"

        code = main(self.DEMO + ["--resume", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "precision" in out
        assert "termination_reason" in out

    def test_resume_matches_uninterrupted_run(self, capsys, tmp_path):
        code = main(self.DEMO)
        assert code == 0
        uninterrupted = capsys.readouterr().out

        ckpt = tmp_path / "run.ckpt.json"
        assert (
            main(
                self.DEMO
                + ["--checkpoint", str(ckpt), "--checkpoint-step", "3"]
            )
            == 0
        )
        capsys.readouterr()
        assert main(self.DEMO + ["--resume", str(ckpt)]) == 0
        resumed = capsys.readouterr().out
        # Everything after the resume banner is identical to the
        # uninterrupted run's report.
        banner, _, tail = resumed.partition("\n")
        assert banner.startswith("resumed from")
        assert tail == uninterrupted

    def test_resume_rejects_mismatched_dataset(self, capsys, tmp_path):
        ckpt = tmp_path / "run.ckpt.json"
        assert (
            main(
                self.DEMO
                + ["--checkpoint", str(ckpt), "--checkpoint-step", "2"]
            )
            == 0
        )
        capsys.readouterr()
        mismatched = ["demo", "--points", "600", "--support", "12", "--seed", "7"]
        code = main(mismatched + ["--resume", str(ckpt)])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err

    def test_parser_accepts_checkpoint_flags(self):
        args = build_parser().parse_args(
            [
                "demo",
                "--checkpoint",
                "x.json",
                "--checkpoint-step",
                "5",
                "--resume",
                "y.json",
            ]
        )
        assert args.checkpoint == "x.json"
        assert args.checkpoint_step == 5
        assert args.resume == "y.json"


class TestDiagnose:
    def test_contrast_verdicts(self, capsys):
        code = main(["diagnose", "--points", "1200", "--seed", "13"])
        assert code == 0
        out = capsys.readouterr().out
        assert "uniform data:   meaningful=False" in out
        assert "clustered data:" in out


class TestObservabilityFlags:
    def test_flags_accepted_before_subcommand(self):
        args = build_parser().parse_args(["-vv", "--trace", "info"])
        assert args.verbose == 2
        assert args.trace is True

    def test_flags_accepted_after_subcommand(self):
        args = build_parser().parse_args(["info", "-v", "--trace"])
        assert args.verbose == 1
        assert args.trace is True

    def test_trace_out_after_subcommand_not_clobbered(self):
        args = build_parser().parse_args(
            ["--trace-out", "t.json", "demo", "--points", "100"]
        )
        assert args.trace_out == "t.json"
        assert args.points == 100

    def test_flags_absent_by_default(self):
        args = build_parser().parse_args(["info"])
        assert not hasattr(args, "trace") or not args.trace
        assert getattr(args, "trace_out", None) is None

    def test_trace_prints_flame_summary(self, capsys):
        assert main(["--trace", "info"]) == 0
        out = capsys.readouterr().out
        assert "trace total" in out
        assert "spans)" in out

    def test_trace_out_writes_json(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "--trace-out",
                str(trace_path),
                "demo",
                "--points",
                "400",
                "--support",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        payload = json.loads(trace_path.read_text())
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node.get("children", []):
                walk(child)

        for root in payload["roots"]:
            walk(root)
        assert {
            "search.run",
            "search.major",
            "search.minor",
            "projection.find",
            "kde.grid",
            "connectivity.flood_fill",
        } <= names
        assert payload["metadata"]["command"] == "demo"

    def test_trace_out_chrome_format(self, capsys, tmp_path):
        trace_path = tmp_path / "chrome.json"
        code = main(
            ["info", "--trace-out", str(trace_path), "--trace-format", "chrome"]
        )
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert "traceEvents" in payload

    def test_demo_prints_run_summary(self, capsys):
        assert main(["demo", "--points", "400", "--support", "10"]) == 0
        out = capsys.readouterr().out
        assert "run summary:" in out
        assert "acceptance_rate" in out
        assert "termination_reason" in out
