"""Tests for the ``python -m repro`` command-line interface."""

import json
import threading
import time
import urllib.request

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("demo", "diagnose", "session", "info"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_demo_options(self):
        args = build_parser().parse_args(
            ["demo", "--points", "500", "--support", "10", "--seed", "1"]
        )
        assert args.points == 500
        assert args.support == 10
        assert args.seed == 1


class TestInfo:
    def test_prints_version_and_defaults(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "support" in out
        assert "bandwidth_scale" in out


class TestDemo:
    def test_runs_and_archives(self, capsys, tmp_path):
        archive = tmp_path / "run.json"
        code = main(
            [
                "demo",
                "--points",
                "600",
                "--support",
                "12",
                "--save",
                str(archive),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision" in out
        payload = json.loads(archive.read_text())
        assert "session" in payload
        assert payload["session"]["total_views"] > 0


class TestCheckpointResume:
    DEMO = ["demo", "--points", "500", "--support", "12", "--seed", "7"]

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        ckpt = tmp_path / "run.ckpt.json"
        code = main(
            self.DEMO + ["--checkpoint", str(ckpt), "--checkpoint-step", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoint written to" in out
        assert "--resume" in out
        payload = json.loads(ckpt.read_text())
        assert payload["format"] == "repro.engine-checkpoint"

        code = main(self.DEMO + ["--resume", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "precision" in out
        assert "termination_reason" in out

    def test_resume_matches_uninterrupted_run(self, capsys, tmp_path):
        code = main(self.DEMO)
        assert code == 0
        uninterrupted = capsys.readouterr().out

        ckpt = tmp_path / "run.ckpt.json"
        assert (
            main(
                self.DEMO
                + ["--checkpoint", str(ckpt), "--checkpoint-step", "3"]
            )
            == 0
        )
        capsys.readouterr()
        assert main(self.DEMO + ["--resume", str(ckpt)]) == 0
        resumed = capsys.readouterr().out
        # Everything after the resume banner is identical to the
        # uninterrupted run's report.
        banner, _, tail = resumed.partition("\n")
        assert banner.startswith("resumed from")
        assert tail == uninterrupted

    def test_resume_rejects_mismatched_dataset(self, capsys, tmp_path):
        ckpt = tmp_path / "run.ckpt.json"
        assert (
            main(
                self.DEMO
                + ["--checkpoint", str(ckpt), "--checkpoint-step", "2"]
            )
            == 0
        )
        capsys.readouterr()
        mismatched = ["demo", "--points", "600", "--support", "12", "--seed", "7"]
        code = main(mismatched + ["--resume", str(ckpt)])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err

    def test_parser_accepts_checkpoint_flags(self):
        args = build_parser().parse_args(
            [
                "demo",
                "--checkpoint",
                "x.json",
                "--checkpoint-step",
                "5",
                "--resume",
                "y.json",
            ]
        )
        assert args.checkpoint == "x.json"
        assert args.checkpoint_step == 5
        assert args.resume == "y.json"


class TestDiagnose:
    def test_contrast_verdicts(self, capsys):
        code = main(["diagnose", "--points", "1200", "--seed", "13"])
        assert code == 0
        out = capsys.readouterr().out
        assert "uniform data:   meaningful=False" in out
        assert "clustered data:" in out


class TestObservabilityFlags:
    def test_flags_accepted_before_subcommand(self):
        args = build_parser().parse_args(["-vv", "--trace", "info"])
        assert args.verbose == 2
        assert args.trace is True

    def test_flags_accepted_after_subcommand(self):
        args = build_parser().parse_args(["info", "-v", "--trace"])
        assert args.verbose == 1
        assert args.trace is True

    def test_trace_out_after_subcommand_not_clobbered(self):
        args = build_parser().parse_args(
            ["--trace-out", "t.json", "demo", "--points", "100"]
        )
        assert args.trace_out == "t.json"
        assert args.points == 100

    def test_flags_absent_by_default(self):
        args = build_parser().parse_args(["info"])
        assert not hasattr(args, "trace") or not args.trace
        assert getattr(args, "trace_out", None) is None

    def test_trace_prints_flame_summary(self, capsys):
        assert main(["--trace", "info"]) == 0
        out = capsys.readouterr().out
        assert "trace total" in out
        assert "spans)" in out

    def test_trace_out_writes_json(self, capsys, tmp_path):
        from repro.density.cache import disabled_density_cache

        trace_path = tmp_path / "trace.json"
        # Cold-cache run: the span inventory below includes the
        # merge-tree build, which a warm process-wide cache would skip.
        with disabled_density_cache():
            code = main(
                [
                    "--trace-out",
                    str(trace_path),
                    "demo",
                    "--points",
                    "400",
                    "--support",
                    "10",
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        payload = json.loads(trace_path.read_text())
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node.get("children", []):
                walk(child)

        for root in payload["roots"]:
            walk(root)
        assert {
            "search.run",
            "search.major",
            "search.minor",
            "projection.find",
            "kde.grid",
            "connectivity.merge_tree.build",
        } <= names
        assert payload["metadata"]["command"] == "demo"

    def test_trace_out_chrome_format(self, capsys, tmp_path):
        trace_path = tmp_path / "chrome.json"
        code = main(
            ["info", "--trace-out", str(trace_path), "--trace-format", "chrome"]
        )
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert "traceEvents" in payload

    def test_demo_prints_run_summary(self, capsys):
        assert main(["demo", "--points", "400", "--support", "10"]) == 0
        out = capsys.readouterr().out
        assert "run summary:" in out
        assert "acceptance_rate" in out
        assert "termination_reason" in out


class TestMetricsOut:
    DEMO = ["demo", "--points", "400", "--support", "10", "--seed", "3"]

    def test_json_suffix_writes_metrics_document(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["--metrics-out", str(path)] + self.DEMO) == 0
        out = capsys.readouterr().out
        assert f"metrics written to {path}" in out
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro.metrics"
        assert "engine.steps" in payload["metrics"]

    def test_prom_suffix_writes_openmetrics_text(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        assert main(["--metrics-out", str(path)] + self.DEMO) == 0
        content = path.read_text()
        assert content.endswith("# EOF\n")
        assert "repro_engine_steps_total" in content

    def test_metrics_out_composes_with_trace(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        code = main(
            ["--metrics-out", str(metrics), "--trace-out", str(trace)]
            + self.DEMO
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics written to" in out
        assert "trace written to" in out
        assert metrics.exists() and trace.exists()

    def test_parser_accepts_flag_after_subcommand(self):
        args = build_parser().parse_args(
            ["demo", "--metrics-out", "m.json", "--points", "100"]
        )
        assert args.metrics_out == "m.json"


class TestBatchCommand:
    BATCH = ["batch", "--points", "600", "--queries", "2", "--support", "12"]

    def test_prints_metrics_digest(self, capsys):
        assert main(self.BATCH + ["--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "batch: 2 queries" in out
        assert "metrics digest:" in out
        assert "kde grid cache entries:" in out

    def test_chrome_trace_has_one_lane_per_worker(self, capsys, tmp_path):
        """Acceptance: parallel batch yields a multi-lane chrome trace."""
        trace_path = tmp_path / "chrome.json"
        code = main(
            [
                "--trace-out",
                str(trace_path),
                "--trace-format",
                "chrome",
            ]
            + self.BATCH
            + ["--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "process lanes" in out
        payload = json.loads(trace_path.read_text())
        names = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M"
        }
        assert names[0] == "parent"
        workers = {pid for pid, name in names.items() if "worker" in name}
        assert len(workers) == 2
        event_pids = {
            e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert workers <= event_pids


class TestServeMetrics:
    def _scrape_in_background(self, monkeypatch):
        """Patch the server factory so a scraper thread can find the port."""
        import repro.obs.openmetrics as openmetrics

        real = openmetrics.start_metrics_server
        servers: list = []
        bodies: dict = {}

        def capturing(*args, **kwargs):
            server = real(*args, **kwargs)
            servers.append(server)
            return server

        monkeypatch.setattr(openmetrics, "start_metrics_server", capturing)

        def scrape():
            deadline = time.time() + 10
            while not servers and time.time() < deadline:
                time.sleep(0.01)
            url = f"http://127.0.0.1:{servers[0].port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                bodies["text"] = response.read().decode()

        thread = threading.Thread(target=scrape, daemon=True)
        thread.start()
        return thread, bodies

    def test_serves_snapshot_until_max_requests(
        self, capsys, tmp_path, monkeypatch
    ):
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "--metrics-out",
                    str(metrics),
                    "demo",
                    "--points",
                    "400",
                    "--support",
                    "10",
                ]
            )
            == 0
        )
        capsys.readouterr()
        thread, bodies = self._scrape_in_background(monkeypatch)
        code = main(
            [
                "serve-metrics",
                "--port",
                "0",
                "--from-json",
                str(metrics),
                "--max-requests",
                "1",
            ]
        )
        thread.join(timeout=10)
        assert code == 0
        assert "repro_engine_steps_total" in bodies["text"]
        assert bodies["text"].endswith("# EOF\n")
        out = capsys.readouterr().out
        assert "serving snapshot" in out
        assert "served 1 request(s)" in out

    def test_rejects_non_metrics_json(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "something-else"}))
        code = main(["serve-metrics", "--from-json", str(bogus)])
        assert code == 2
        assert "repro.metrics" in capsys.readouterr().err

    def test_rejects_missing_file(self, capsys, tmp_path):
        code = main(
            ["serve-metrics", "--from-json", str(tmp_path / "missing.json")]
        )
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-metrics"])
        assert args.port == 9464
        assert args.host == "127.0.0.1"
        assert args.from_json is None
        assert args.max_requests == 0


class TestJournalFlags:
    DEMO = ["demo", "--points", "500", "--support", "12", "--seed", "7"]

    def test_demo_journal_then_replay_and_inspect(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        assert main(self.DEMO + ["--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "session journal written to" in out
        assert journal.exists()

        assert main(["replay", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "CLEAN" in out

        assert main(["inspect", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "chain OK" in out
        assert "session_start" in out
        assert "finished:    yes" in out

    def test_checkpoint_resume_journal_replays_clean(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        ckpt = tmp_path / "run.ckpt.json"
        assert (
            main(
                self.DEMO
                + [
                    "--journal",
                    str(journal),
                    "--checkpoint",
                    str(ckpt),
                    "--checkpoint-step",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # The printed resume command carries the journal along.
        assert "--journal" in out
        assert json.loads(ckpt.read_text())["journal"]["cursor"]["seq"] >= 0

        assert (
            main(
                self.DEMO
                + ["--journal", str(journal), "--resume", str(ckpt)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["replay", str(journal)]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_resume_without_journaled_checkpoint_fails(
        self, capsys, tmp_path
    ):
        ckpt = tmp_path / "run.ckpt.json"
        assert (
            main(
                self.DEMO
                + ["--checkpoint", str(ckpt), "--checkpoint-step", "2"]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            self.DEMO
            + ["--journal", str(tmp_path / "j.jsonl"), "--resume", str(ckpt)]
        )
        assert code == 2
        assert (
            "the checkpoint was written without one"
            in capsys.readouterr().err
        )

    def test_replay_divergence_exits_1(self, capsys, tmp_path):
        from repro.obs.journal import canonical_json, sha256_hex

        journal = tmp_path / "run.jsonl"
        assert main(self.DEMO + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        # Perturb a view digest, recomputing the chain so the file
        # still *validates* — replay must catch it semantically.
        chain = "repro.session-journal:genesis"
        lines = []
        for line in journal.read_text().splitlines():
            obj = json.loads(line)
            if obj["type"] == "view" and "live_digest" in obj["payload"]:
                obj["payload"]["live_digest"] = "0" * 64
            record = {k: obj[k] for k in ("seq", "type", "ts", "payload")}
            chain = sha256_hex(chain + canonical_json(record))
            record["chain"] = chain
            lines.append(canonical_json(record))
        journal.write_text("\n".join(lines) + "\n")

        assert main(["replay", str(journal)]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_replay_corrupt_journal_exits_2(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        assert main(self.DEMO + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        journal.write_bytes(journal.read_bytes()[:-7])
        assert main(["replay", str(journal)]) == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_inspect_corrupt_journal_exits_2(self, capsys, tmp_path):
        journal = tmp_path / "bad.jsonl"
        journal.write_text("not json\n")
        assert main(["inspect", str(journal)]) == 2
        assert "cannot inspect" in capsys.readouterr().err

    def test_batch_journal_dir_writes_replayable_journals(
        self, capsys, tmp_path
    ):
        jdir = tmp_path / "journals"
        code = main(
            [
                "batch",
                "--points",
                "500",
                "--queries",
                "2",
                "--journal-dir",
                str(jdir),
            ]
        )
        assert code == 0
        assert "session journals" in capsys.readouterr().out
        journals = sorted(jdir.glob("session-*.jsonl"))
        assert len(journals) == 2
        for path in journals:
            capsys.readouterr()
            assert main(["replay", str(path)]) == 0
            assert "CLEAN" in capsys.readouterr().out

    def test_parser_accepts_journal_flags(self):
        args = build_parser().parse_args(
            ["demo", "--journal", "j.jsonl"]
        )
        assert args.journal == "j.jsonl"
        args = build_parser().parse_args(
            ["batch", "--journal-dir", "jdir"]
        )
        assert args.journal_dir == "jdir"
        args = build_parser().parse_args(["replay", "j.jsonl"])
        assert args.command == "replay" and args.journal == "j.jsonl"
        args = build_parser().parse_args(["inspect", "j.jsonl"])
        assert args.command == "inspect" and args.journal == "j.jsonl"
