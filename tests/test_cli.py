"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("demo", "diagnose", "session", "info"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_demo_options(self):
        args = build_parser().parse_args(
            ["demo", "--points", "500", "--support", "10", "--seed", "1"]
        )
        assert args.points == 500
        assert args.support == 10
        assert args.seed == 1


class TestInfo:
    def test_prints_version_and_defaults(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "support" in out
        assert "bandwidth_scale" in out


class TestDemo:
    def test_runs_and_archives(self, capsys, tmp_path):
        archive = tmp_path / "run.json"
        code = main(
            [
                "demo",
                "--points",
                "600",
                "--support",
                "12",
                "--save",
                str(archive),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision" in out
        payload = json.loads(archive.read_text())
        assert "session" in payload
        assert payload["session"]["total_views"] > 0


class TestDiagnose:
    def test_contrast_verdicts(self, capsys):
        code = main(["diagnose", "--points", "1200", "--seed", "13"])
        assert code == 0
        out = capsys.readouterr().out
        assert "uniform data:   meaningful=False" in out
        assert "clustered data:" in out
