"""Public-API integrity: exports, docstrings, version."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.density",
    "repro.geometry",
    "repro.data",
    "repro.interaction",
    "repro.analysis",
    "repro.baselines",
    "repro.viz",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        """Every name in __all__ actually exists in the package."""
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert exported, f"{package_name} has no __all__"
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_no_duplicate_exports(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert len(exported) == len(set(exported))

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_objects_documented(self, package_name):
        """Every exported class and function carries a docstring."""
        package = importlib.import_module(package_name)
        undocumented = []
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"{package_name}: {undocumented}"

    def test_public_methods_documented(self):
        """Methods of the flagship classes are documented."""
        from repro import InteractiveNNSearch, Subspace
        from repro.density import DensityGrid, KernelDensityEstimator

        for cls in (InteractiveNNSearch, Subspace, DensityGrid,
                    KernelDensityEstimator):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name}"


class TestModuleDocstrings:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_package_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert (package.__doc__ or "").strip()
