"""Unit tests for repro.analysis.stability."""

import numpy as np
import pytest

from repro.analysis.stability import jaccard, query_stability
from repro.baselines.full_dim import FullDimensionalKNN
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError


class TestJaccard:
    def test_identical(self):
        assert jaccard(np.array([1, 2, 3]), np.array([3, 2, 1])) == 1.0

    def test_disjoint(self):
        assert jaccard(np.array([1]), np.array([2])) == 0.0

    def test_partial(self):
        assert jaccard(np.array([1, 2]), np.array([2, 3])) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(np.array([], int), np.array([], int)) == 1.0


class TestQueryStability:
    def test_clustered_low_dim_stable(self, rng):
        """kNN inside a crisp low-dim cluster barely changes."""
        cluster = rng.normal(0, 0.02, size=(100, 2))
        far = rng.uniform(2, 3, size=(100, 2))
        ds = Dataset(points=np.vstack([cluster, far]))
        knn = FullDimensionalKNN(ds)
        report = query_stability(
            lambda q: knn.query(q, 20).neighbor_indices,
            ds.points,
            cluster[0],
            np.random.default_rng(0),
            epsilon=0.1,
            n_perturbations=5,
        )
        assert report.mean_overlap > 0.8
        assert report.baseline_size == 20

    def test_uniform_high_dim_less_stable(self, rng):
        """The paper's instability: concentrated distances flip answers."""
        lo = rng.uniform(size=(400, 2))
        hi = rng.uniform(size=(400, 60))

        def stability(points, query):
            ds = Dataset(points=points)
            knn = FullDimensionalKNN(ds)
            return query_stability(
                lambda q: knn.query(q, 10).neighbor_indices,
                points,
                query,
                np.random.default_rng(1),
                epsilon=2.0,
                n_perturbations=5,
            ).mean_overlap

        assert stability(hi, hi[0]) <= stability(lo, lo[0]) + 1e-9

    def test_validation(self, rng):
        points = rng.normal(size=(20, 3))
        searcher = lambda q: np.arange(3)
        with pytest.raises(ConfigurationError):
            query_stability(searcher, points, points[0], rng, epsilon=0.0)
        with pytest.raises(ConfigurationError):
            query_stability(
                searcher, points, points[0], rng, n_perturbations=0
            )

    def test_identical_points_rejected(self, rng):
        points = np.zeros((10, 2))
        with pytest.raises(ConfigurationError):
            query_stability(
                lambda q: np.arange(2), points, np.zeros(2), rng
            )

    def test_deterministic_searcher_with_zero_sized_answer(self, rng):
        points = rng.normal(size=(30, 4))
        report = query_stability(
            lambda q: np.array([], dtype=int),
            points,
            points[0],
            np.random.default_rng(2),
        )
        assert report.mean_overlap == 1.0  # empty == empty
        assert report.baseline_size == 0

    def test_overlap_count_matches(self, rng):
        points = rng.normal(size=(50, 3))
        report = query_stability(
            lambda q: np.arange(5),
            points,
            points[0],
            np.random.default_rng(3),
            n_perturbations=7,
        )
        assert len(report.overlaps) == 7
        assert report.mean_overlap == 1.0  # constant searcher
