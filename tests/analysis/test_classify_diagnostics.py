"""Unit tests for repro.analysis.classify and repro.analysis.diagnostics."""

import numpy as np
import pytest

from repro.analysis.classify import (
    classify_query_baseline,
    classify_query_interactive,
    compare_classification,
    majority_label,
)
from repro.analysis.diagnostics import diagnose
from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.interaction.oracle import OracleUser
from repro.interaction.scripted import CallbackUser
from repro.interaction.base import UserDecision


FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=3,
    projection_restarts=2,
)


class TestMajorityLabel:
    def test_simple(self):
        assert majority_label(np.array([1, 1, 2])) == 1

    def test_tie_breaks_to_smaller(self):
        assert majority_label(np.array([2, 1])) == 1

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            majority_label(np.array([], dtype=int))


class TestBaselineClassification:
    def test_classifies(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        out = classify_query_baseline(ds, qi, 10)
        assert out.true_label == ds.label_of(qi)
        assert out.neighbors_used == 10

    def test_requires_labels(self, rng):
        ds = Dataset(points=rng.normal(size=(20, 3)))
        with pytest.raises(ConfigurationError):
            classify_query_baseline(ds, 0, 3)


class TestInteractiveClassification:
    def test_correct_on_easy_data(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        out, k = classify_query_interactive(
            ds, qi, OracleUser(ds, qi), config=FAST
        )
        assert out.predicted_label == out.true_label
        assert k == out.neighbors_used

    def test_fallback_on_reject_all_user(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        reject_all = CallbackUser(lambda v: UserDecision.reject(v.n_points))
        out, _ = classify_query_interactive(ds, qi, reject_all, config=FAST)
        assert out.used_fallback

    def test_requires_labels(self, rng):
        ds = Dataset(points=rng.normal(size=(20, 3)))
        with pytest.raises(ConfigurationError):
            classify_query_interactive(ds, 0, CallbackUser(lambda v: None))


class TestCompareClassification:
    def test_full_protocol(self, small_clustered):
        ds = small_clustered.dataset
        queries = ds.cluster_indices(0)[:3]
        cmp = compare_classification(
            ds,
            queries,
            lambda d, qi: OracleUser(d, qi),
            config=FAST,
        )
        assert len(cmp.baseline) == 3
        assert len(cmp.interactive) == 3
        assert 0.0 <= cmp.baseline_accuracy <= 1.0
        assert cmp.interactive_accuracy >= 0.5

    def test_empty_accuracy(self):
        from repro.analysis.classify import ClassificationComparison

        cmp = ClassificationComparison(baseline=(), interactive=())
        assert cmp.baseline_accuracy == 0.0


class TestDiagnostics:
    def test_meaningful_on_clustered(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
        verdict = diagnose(result)
        assert verdict.meaningful
        assert verdict.acceptance_rate > 0.1
        assert verdict.steep_drop.has_steep_drop
        assert "natural cluster" in verdict.explanation

    def test_meaningless_on_rejection(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        reject_all = CallbackUser(lambda v: UserDecision.reject(v.n_points))
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], reject_all)
        verdict = diagnose(result)
        assert not verdict.meaningful
        assert verdict.acceptance_rate == 0.0
        assert verdict.max_probability == 0.0
        assert ";" in verdict.explanation or "no" in verdict.explanation
