"""Unit tests for repro.analysis.quality."""

import numpy as np
import pytest

from repro.analysis.quality import (
    coherence_threshold,
    natural_neighbors,
    precision_recall_at_k,
    retrieval_quality,
    steep_drop_analysis,
)
from repro.exceptions import ConfigurationError, EmptyDatasetError


class TestRetrievalQuality:
    def test_perfect(self):
        q = retrieval_quality(np.array([1, 2, 3]), np.array([1, 2, 3]))
        assert q.precision == 1.0 and q.recall == 1.0 and q.f1 == 1.0

    def test_partial(self):
        q = retrieval_quality(np.array([1, 2, 3, 4]), np.array([1, 2, 9, 10]))
        assert q.precision == 0.5
        assert q.recall == 0.5
        assert q.hits == 2

    def test_empty_retrieved(self):
        q = retrieval_quality(np.array([], dtype=int), np.array([1]))
        assert q.precision == 0.0 and q.recall == 0.0 and q.f1 == 0.0

    def test_empty_relevant(self):
        q = retrieval_quality(np.array([1]), np.array([], dtype=int))
        assert q.recall == 0.0

    def test_precision_recall_at_k(self):
        ranked = np.array([5, 4, 3, 2, 1])
        relevant = np.array([5, 4])
        by_k = precision_recall_at_k(ranked, relevant, (1, 2, 5))
        assert by_k[1].precision == 1.0
        assert by_k[2].recall == 1.0
        assert by_k[5].precision == pytest.approx(0.4)

    def test_at_k_requires_ks(self):
        with pytest.raises(ConfigurationError):
            precision_recall_at_k(np.array([1]), np.array([1]), ())


class TestSteepDrop:
    def test_crisp_staircase(self):
        probs = np.concatenate([np.full(50, 0.95), np.full(450, 0.05)])
        drop = steep_drop_analysis(probs)
        assert drop.has_steep_drop
        assert drop.natural_count == 50
        assert drop.drop_magnitude == pytest.approx(0.9)

    def test_flat_distribution_no_drop(self):
        probs = np.full(100, 0.2)
        drop = steep_drop_analysis(probs)
        assert not drop.has_steep_drop
        assert drop.natural_count == 0

    def test_low_plateau_rejected(self):
        probs = np.concatenate([np.full(10, 0.4), np.zeros(90)])
        drop = steep_drop_analysis(probs)
        assert not drop.has_steep_drop

    def test_multi_step_staircase_takes_deepest_cliff(self):
        probs = np.concatenate(
            [np.full(30, 0.99), np.full(30, 0.8), np.full(40, 0.05), np.zeros(300)]
        )
        drop = steep_drop_analysis(probs)
        assert drop.has_steep_drop
        assert drop.natural_count == 60  # both high bands retained

    def test_cut_respects_max_fraction(self):
        # The only big gap sits beyond half the data: not eligible.
        probs = np.concatenate([np.full(90, 0.9), np.zeros(10)])
        drop = steep_drop_analysis(probs, max_fraction=0.5)
        assert not drop.has_steep_drop

    def test_single_value(self):
        assert steep_drop_analysis(np.array([0.95])).has_steep_drop
        assert not steep_drop_analysis(np.array([0.1])).has_steep_drop

    def test_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            steep_drop_analysis(np.array([]))

    def test_order_invariant(self, rng):
        probs = np.concatenate([np.full(20, 0.9), np.zeros(80)])
        shuffled = rng.permutation(probs)
        a = steep_drop_analysis(probs)
        b = steep_drop_analysis(shuffled)
        assert a.natural_count == b.natural_count


class TestCoherenceThreshold:
    def test_formula(self):
        assert coherence_threshold(3) == pytest.approx(0.5)
        assert coherence_threshold(6) == pytest.approx(0.25)

    def test_capped(self):
        assert coherence_threshold(1) == 0.95

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            coherence_threshold(0)


class TestNaturalNeighbors:
    def test_generic_mode(self):
        probs = np.concatenate([np.full(25, 0.95), np.zeros(475)])
        nn = natural_neighbors(probs)
        assert nn.size == 25
        assert set(nn.tolist()) == set(range(25))

    def test_iterations_mode_coherence_cut(self):
        # 3 iterations: members at 1.0, one-iteration shelf at 0.33.
        probs = np.concatenate(
            [np.full(40, 1.0), np.full(60, 0.33), np.zeros(400)]
        )
        nn = natural_neighbors(probs, iterations=3)
        assert nn.size == 40

    def test_iterations_mode_falls_back_to_steep_drop(self):
        # Coherence cut would grab a low-mean set; steep drop rescues.
        probs = np.concatenate(
            [np.full(30, 0.9), np.full(200, 0.55), np.zeros(270)]
        )
        nn = natural_neighbors(probs, iterations=3, min_set_mean=0.8)
        assert nn.size == 30

    def test_meaningless_distribution_empty(self):
        probs = np.full(200, 0.15)
        assert natural_neighbors(probs, iterations=3).size == 0
        assert natural_neighbors(probs).size == 0

    def test_returns_highest_probability_indices(self, rng):
        probs = np.zeros(100)
        winners = rng.choice(100, size=10, replace=False)
        probs[winners] = 0.99
        nn = natural_neighbors(probs)
        assert set(nn.tolist()) == set(winners.tolist())
