"""Unit tests for repro.analysis.attribution."""

import numpy as np
import pytest

from repro.analysis.attribution import (
    attribute_importance,
    neighborhood_attribute_importance,
)
from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.core.session import SearchSession
from repro.exceptions import DimensionalityError, EmptyDatasetError
from repro.interaction.oracle import OracleUser

FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
    axis_parallel=True,
)


@pytest.fixture
def oracle_run(small_clustered):
    ds = small_clustered.dataset
    qi = int(ds.cluster_indices(0)[0])
    result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], OracleUser(ds, qi))
    return small_clustered, result


class TestSelectionMode:
    def test_signal_axes_dominate(self, oracle_run):
        """The user's selections are tight exactly along the true axes."""
        data, result = oracle_run
        ds = data.dataset
        importance = attribute_importance(result.session, ds.points)
        assert importance.mode == "selection"
        assert importance.accepted_views > 0

        truth = data.clusters[0]
        signal_axes = {
            int(np.flatnonzero(np.abs(row) > 1e-9)[0]) for row in truth.basis
        }
        top = {axis for axis, _ in importance.top_attributes(len(signal_axes))}
        assert len(top & signal_axes) >= len(signal_axes) - 1

    def test_signal_weights_exceed_noise_weights(self, oracle_run):
        data, result = oracle_run
        ds = data.dataset
        importance = attribute_importance(result.session, ds.points)
        truth = data.clusters[0]
        signal_axes = [
            int(np.flatnonzero(np.abs(row) > 1e-9)[0]) for row in truth.basis
        ]
        noise_axes = [a for a in range(ds.dim) if a not in signal_axes]
        assert (
            importance.weights[signal_axes].mean()
            > 2 * importance.weights[noise_axes].mean()
        )

    def test_points_shape_check(self, oracle_run):
        _, result = oracle_run
        with pytest.raises(DimensionalityError):
            attribute_importance(result.session, np.ones((5, 3)))


class TestFootprintMode:
    def test_runs_without_points(self, oracle_run):
        _, result = oracle_run
        importance = attribute_importance(result.session)
        assert importance.mode == "footprint"
        assert importance.weights.shape == (10,)
        if importance.accepted_views:
            # Each accepted axis-parallel view has footprint summing to 2.
            assert importance.weights.sum() == pytest.approx(2.0, abs=1e-8)

    def test_normalized(self, oracle_run):
        _, result = oracle_run
        importance = attribute_importance(result.session)
        if importance.accepted_views:
            assert importance.normalized().sum() == pytest.approx(1.0)


class TestNeighborhoodMode:
    def test_exact_cluster_recovers_signal_axes(self, small_clustered):
        data = small_clustered
        ds = data.dataset
        members = ds.cluster_indices(0)
        importance = neighborhood_attribute_importance(ds.points, members)
        assert importance.mode == "neighborhood"
        truth = data.clusters[0]
        signal_axes = {
            int(np.flatnonzero(np.abs(row) > 1e-9)[0]) for row in truth.basis
        }
        top = {a for a, _ in importance.top_attributes(len(signal_axes))}
        assert top == signal_axes

    def test_signal_weights_near_one(self, small_clustered):
        data = small_clustered
        ds = data.dataset
        members = ds.cluster_indices(1)
        importance = neighborhood_attribute_importance(ds.points, members)
        truth = data.clusters[1]
        signal_axes = [
            int(np.flatnonzero(np.abs(row) > 1e-9)[0]) for row in truth.basis
        ]
        assert importance.weights[signal_axes].min() > 0.8

    def test_requires_two_neighbors(self, small_clustered):
        ds = small_clustered.dataset
        with pytest.raises(EmptyDatasetError):
            neighborhood_attribute_importance(ds.points, np.array([0]))

    def test_points_shape(self):
        with pytest.raises(DimensionalityError):
            neighborhood_attribute_importance(np.ones(5), np.array([0, 1]))


class TestEdges:
    def test_empty_session_raises(self):
        with pytest.raises(EmptyDatasetError):
            attribute_importance(SearchSession())

    def test_no_accepted_views(self, small_clustered):
        from repro.interaction.base import UserDecision
        from repro.interaction.scripted import CallbackUser

        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        reject = CallbackUser(lambda v: UserDecision.reject(v.n_points))
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], reject)
        importance = attribute_importance(result.session, ds.points)
        assert importance.accepted_views == 0
        assert np.allclose(importance.weights, 0.0)
        assert np.allclose(importance.normalized(), 0.0)
