"""Unit tests for repro.analysis.contrast."""

import numpy as np
import pytest

from repro.analysis.contrast import (
    contrast_report,
    dimensionality_contrast_curve,
    is_unstable_query,
    mean_relative_contrast,
)
from repro.exceptions import EmptyDatasetError


class TestContrastReport:
    def test_basic_fields(self, rng):
        points = rng.uniform(size=(200, 5))
        report = contrast_report(points, points[0])
        assert report.d_min > 0  # zero distance excluded
        assert report.d_max >= report.d_min
        assert report.relative_contrast >= 0
        assert 0 <= report.epsilon_instability <= 1

    def test_exclude_zero(self, rng):
        points = np.vstack([np.zeros((1, 3)), rng.uniform(size=(10, 3))])
        report = contrast_report(points, np.zeros(3))
        assert report.d_min > 0

    def test_keep_zero(self, rng):
        points = np.vstack([np.zeros((1, 3)), rng.uniform(size=(10, 3))])
        report = contrast_report(points, np.zeros(3), exclude_zero=False)
        assert report.d_min == 0.0
        assert report.relative_contrast == float("inf")

    def test_all_zero_distances_raise(self):
        points = np.zeros((5, 2))
        with pytest.raises(EmptyDatasetError):
            contrast_report(points, np.zeros(2))

    def test_high_dim_contrast_lower(self, rng):
        lo_d = contrast_report(rng.uniform(size=(500, 2)), rng.uniform(size=2))
        hi_d = contrast_report(rng.uniform(size=(500, 100)), rng.uniform(size=100))
        assert hi_d.relative_contrast < lo_d.relative_contrast
        assert hi_d.coefficient_of_variation < lo_d.coefficient_of_variation


class TestInstability:
    def test_uniform_high_dim_unstable(self, rng):
        points = rng.uniform(size=(500, 100))
        query = rng.uniform(size=100)
        assert is_unstable_query(points, query, epsilon=0.5)

    def test_clustered_low_dim_stable(self, rng):
        cluster = rng.normal(0, 0.01, size=(50, 2))
        far = rng.uniform(5, 6, size=(450, 2))
        points = np.vstack([cluster, far])
        assert not is_unstable_query(points, np.zeros(2), epsilon=0.5)


class TestAggregates:
    def test_mean_relative_contrast(self, rng):
        points = rng.uniform(size=(300, 10))
        queries = rng.uniform(size=(5, 10))
        value = mean_relative_contrast(points, queries)
        assert value > 0

    def test_single_query_promoted(self, rng):
        points = rng.uniform(size=(100, 4))
        value = mean_relative_contrast(points, rng.uniform(size=4))
        assert value > 0

    def test_no_queries(self, rng):
        with pytest.raises(EmptyDatasetError):
            mean_relative_contrast(rng.uniform(size=(10, 2)), np.zeros((0, 2)))

    def test_dimensionality_curve_decreasing(self):
        rng = np.random.default_rng(0)
        curve = dimensionality_contrast_curve(
            rng, dims=(2, 20, 100), n_points=400, n_queries=5
        )
        assert curve[2] > curve[20] > curve[100]
