"""Unit tests for repro.analysis.structure."""

import numpy as np
import pytest

from repro.analysis.structure import structure_ladder, view_structure
from repro.density.grid import DensityGrid
from repro.exceptions import ConfigurationError


@pytest.fixture
def three_blob_view(rng):
    a = np.array([0.2, 0.2]) + rng.normal(0, 0.02, size=(200, 2))
    b = np.array([0.8, 0.2]) + rng.normal(0, 0.02, size=(120, 2))
    c = np.array([0.5, 0.8]) + rng.normal(0, 0.02, size=(60, 2))
    points = np.vstack([a, b, c])
    query = np.array([0.8, 0.2])  # inside blob b (second largest)
    grid = DensityGrid(points, resolution=40, include=query)
    return grid, points, query


class TestViewStructure:
    def test_finds_three_regions(self, three_blob_view):
        grid, points, query = three_blob_view
        tau = grid.density.max() * 0.05
        structure = view_structure(grid, points, query, tau)
        assert structure.region_count == 3

    def test_regions_sorted_by_size(self, three_blob_view):
        grid, points, query = three_blob_view
        tau = grid.density.max() * 0.05
        structure = view_structure(grid, points, query, tau)
        counts = [r.point_count for r in structure.regions]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > 150  # the big blob

    def test_query_region_identified(self, three_blob_view):
        grid, points, query = three_blob_view
        tau = grid.density.max() * 0.05
        structure = view_structure(grid, points, query, tau)
        region = structure.query_region
        assert region is not None
        assert structure.query_region_rank == 1  # second largest
        # The query region's centroid is near blob b's center.
        assert abs(region.centroid[0] - 0.8) < 0.1
        assert abs(region.centroid[1] - 0.2) < 0.1

    def test_no_region_above_peak(self, three_blob_view):
        grid, points, query = three_blob_view
        structure = view_structure(grid, points, query, grid.density.max() * 2)
        assert structure.region_count == 0
        assert structure.query_region is None
        assert structure.query_region_rank is None

    def test_peak_density_positive(self, three_blob_view):
        grid, points, query = three_blob_view
        tau = grid.density.max() * 0.05
        structure = view_structure(grid, points, query, tau)
        for region in structure.regions:
            assert region.peak_density >= tau


class TestStructureLadder:
    def test_ladder_produces_plateau(self, three_blob_view):
        grid, points, query = three_blob_view
        ladder = structure_ladder(grid, points, query, steps=8)
        assert len(ladder) == 8
        counts = [s.region_count for s in ladder]
        # Somewhere on the ladder, all three blobs are distinguished.
        assert max(counts) >= 3

    def test_ladder_step_validation(self, three_blob_view):
        grid, points, query = three_blob_view
        with pytest.raises(ConfigurationError):
            structure_ladder(grid, points, query, steps=0)

    def test_uniform_noise_never_plateaus_at_k(self, rng):
        points = rng.uniform(size=(400, 2))
        grid = DensityGrid(points, resolution=40)
        ladder = structure_ladder(grid, points, points[0], steps=8)
        counts = [s.region_count for s in ladder]
        # Noise shows either one blob (low tau) or confetti (high tau),
        # never a long stable plateau; here we just check validity.
        assert all(c >= 0 for c in counts)
