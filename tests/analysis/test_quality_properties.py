"""Property-based tests for the quality/natural-neighbor machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.quality import (
    natural_neighbors,
    retrieval_quality,
    steep_drop_analysis,
)

probability_vectors = arrays(
    np.float64,
    st.integers(min_value=2, max_value=300),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


@given(probability_vectors)
@settings(max_examples=60, deadline=None)
def test_steep_drop_output_invariants(probs):
    drop = steep_drop_analysis(probs)
    assert drop.natural_count >= 0
    assert drop.natural_count <= probs.size
    assert 0.0 <= drop.plateau_value <= 1.0 + 1e-12
    if drop.has_steep_drop:
        assert drop.natural_count >= 1
        assert drop.drop_magnitude > 0
    else:
        assert drop.natural_count == 0


@given(probability_vectors)
@settings(max_examples=60, deadline=None)
def test_steep_drop_permutation_invariant(probs):
    rng = np.random.default_rng(0)
    shuffled = rng.permutation(probs)
    a = steep_drop_analysis(probs)
    b = steep_drop_analysis(shuffled)
    assert a.natural_count == b.natural_count
    assert a.has_steep_drop == b.has_steep_drop


@given(probability_vectors, st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_natural_neighbors_are_top_ranked(probs, iterations):
    nn = natural_neighbors(probs, iterations=iterations)
    assert nn.size <= probs.size
    if nn.size:
        cutoff = probs[nn].min()
        outside = np.setdiff1d(np.arange(probs.size), nn)
        if outside.size:
            # No excluded point strictly outranks an included one.
            assert probs[outside].max() <= cutoff + 1e-12


@given(probability_vectors)
@settings(max_examples=40, deadline=None)
def test_scaling_down_probabilities_never_creates_clusters(probs):
    """If no natural cluster exists, shrinking all probabilities
    uniformly cannot create one."""
    if natural_neighbors(probs, iterations=3).size == 0:
        shrunk = probs * 0.5
        assert natural_neighbors(shrunk, iterations=3).size == 0


@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=30),
    st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_retrieval_quality_bounds(retrieved, relevant):
    quality = retrieval_quality(
        np.asarray(retrieved, dtype=int), np.asarray(relevant, dtype=int)
    )
    assert 0.0 <= quality.precision <= 1.0
    assert 0.0 <= quality.recall <= 1.0
    assert 0.0 <= quality.f1 <= 1.0
    assert quality.hits <= quality.retrieved
    assert quality.hits <= max(quality.relevant, quality.retrieved)


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_retrieval_quality_perfect_when_identical(indices):
    unique = np.unique(np.asarray(indices, dtype=int))
    quality = retrieval_quality(unique, unique)
    assert quality.precision == 1.0
    assert quality.recall == 1.0
