"""Unit tests for repro.density.kde."""

import numpy as np
import pytest

from repro.density.kde import KernelDensityEstimator
from repro.density.kernels import epanechnikov_kernel
from repro.exceptions import (
    ConfigurationError,
    DimensionalityError,
    EmptyDatasetError,
)


class TestConstruction:
    def test_default_bandwidth_is_silverman(self, rng):
        pts = rng.normal(size=(100, 2))
        kde = KernelDensityEstimator(pts)
        assert kde.bandwidth.shape == (2,)
        assert np.all(kde.bandwidth > 0)

    def test_scalar_bandwidth_broadcast(self, rng):
        kde = KernelDensityEstimator(rng.normal(size=(10, 3)), bandwidth=0.5)
        assert np.allclose(kde.bandwidth, 0.5)

    def test_explicit_vector_bandwidth(self, rng):
        kde = KernelDensityEstimator(
            rng.normal(size=(10, 2)), bandwidth=[0.1, 0.2]
        )
        assert np.allclose(kde.bandwidth, [0.1, 0.2])

    def test_wrong_bandwidth_length(self, rng):
        with pytest.raises(ConfigurationError):
            KernelDensityEstimator(rng.normal(size=(10, 2)), bandwidth=[0.1] * 3)

    def test_nonpositive_bandwidth(self, rng):
        with pytest.raises(ConfigurationError):
            KernelDensityEstimator(rng.normal(size=(10, 2)), bandwidth=0.0)

    def test_empty_points(self):
        with pytest.raises(EmptyDatasetError):
            KernelDensityEstimator(np.zeros((0, 2)))

    def test_1d_points_promoted(self, rng):
        kde = KernelDensityEstimator(rng.normal(size=20))
        assert kde.dim == 1


class TestEvaluate:
    def test_density_positive_near_data(self, rng):
        pts = rng.normal(size=(200, 2))
        kde = KernelDensityEstimator(pts)
        assert kde.evaluate(np.zeros(2)) > 0

    def test_density_higher_at_mode(self, rng):
        pts = rng.normal(0.0, 0.1, size=(300, 2))
        kde = KernelDensityEstimator(pts)
        assert kde.evaluate(np.zeros(2)) > kde.evaluate(np.array([2.0, 2.0]))

    def test_integrates_to_one_1d(self, rng):
        pts = rng.normal(size=(100, 1))
        kde = KernelDensityEstimator(pts)
        grid = np.linspace(-6, 6, 2001)[:, np.newaxis]
        total = np.trapezoid(kde.evaluate(grid), grid[:, 0])
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_matches_manual_sum(self):
        pts = np.array([[0.0], [1.0]])
        kde = KernelDensityEstimator(pts, bandwidth=1.0)
        where = np.array([[0.5]])
        norm = 1.0 / np.sqrt(2 * np.pi)
        expected = 0.5 * (norm * np.exp(-0.125) + norm * np.exp(-0.125))
        assert kde.evaluate(where)[0] == pytest.approx(expected)

    def test_batching_consistent(self, rng):
        pts = rng.normal(size=(50, 2))
        kde = KernelDensityEstimator(pts)
        where = rng.normal(size=(100, 2))
        assert np.allclose(
            kde.evaluate(where, batch_size=7), kde.evaluate(where, batch_size=1000)
        )

    def test_dim_mismatch(self, rng):
        kde = KernelDensityEstimator(rng.normal(size=(10, 2)))
        with pytest.raises(DimensionalityError):
            kde.evaluate(np.zeros((5, 3)))

    def test_compact_kernel(self, rng):
        pts = rng.normal(size=(50, 1))
        kde = KernelDensityEstimator(pts, kernel=epanechnikov_kernel)
        assert kde.evaluate(np.array([100.0])) == 0.0


class TestGridEvaluation:
    def test_matches_pointwise(self, rng):
        pts = rng.normal(size=(60, 2))
        kde = KernelDensityEstimator(pts)
        gx = np.linspace(-2, 2, 9)
        gy = np.linspace(-2, 2, 7)
        grid = kde.evaluate_on_grid(gx, gy)
        assert grid.shape == (9, 7)
        where = np.array([[gx[3], gy[5]]])
        assert grid[3, 5] == pytest.approx(kde.evaluate(where)[0])

    def test_requires_2d(self, rng):
        kde = KernelDensityEstimator(rng.normal(size=(10, 3)))
        with pytest.raises(DimensionalityError):
            kde.evaluate_on_grid(np.linspace(0, 1, 5), np.linspace(0, 1, 5))


class TestLateralSampling:
    def test_sample_count_and_shape(self, rng):
        pts = rng.normal(size=(100, 2))
        kde = KernelDensityEstimator(pts)
        samples = kde.sample_lateral(500, rng)
        assert samples.shape == (500, 2)

    def test_samples_concentrate_on_mode(self, rng):
        blob = rng.normal(0.0, 0.05, size=(300, 2))
        kde = KernelDensityEstimator(blob)
        samples = kde.sample_lateral(400, rng)
        # Most fictitious points should land near the blob.
        near = np.linalg.norm(samples, axis=1) < 0.5
        assert near.mean() > 0.9

    def test_zero_count(self, rng):
        kde = KernelDensityEstimator(rng.normal(size=(10, 2)))
        assert kde.sample_lateral(0, rng).shape == (0, 2)

    def test_requires_2d(self, rng):
        kde = KernelDensityEstimator(rng.normal(size=(10, 3)))
        with pytest.raises(DimensionalityError):
            kde.sample_lateral(10, rng)
