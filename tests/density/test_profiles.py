"""Unit tests for repro.density.profiles and separators."""

import numpy as np
import pytest

from repro.density.grid import DensityGrid
from repro.density.profiles import (
    LateralDensityPlot,
    VisualProfile,
    compute_profile_statistics,
)
from repro.density.separators import (
    DensitySeparator,
    PolygonalSeparator,
    RejectView,
)
from repro.exceptions import ConfigurationError, DimensionalityError


class TestVisualProfile:
    def test_build_and_statistics(self, blob_2d):
        points, center = blob_2d
        profile = VisualProfile.build(points, center, resolution=30)
        stats = profile.statistics
        assert stats.query_percentile > 0.9  # query on the peak
        assert stats.peak_to_median > 2.0
        assert stats.query_density > stats.median_density

    def test_query_off_peak(self, blob_2d):
        points, _ = blob_2d
        corner = np.array([0.02, 0.02])
        profile = VisualProfile.build(points, corner, resolution=30)
        assert profile.statistics.query_density < profile.statistics.peak_density / 3

    def test_query_must_be_2_vector(self, blob_2d):
        with pytest.raises(DimensionalityError):
            VisualProfile.build(blob_2d[0], np.zeros(3))

    def test_bandwidth_scale_sharpens(self, blob_2d):
        points, center = blob_2d
        smooth = VisualProfile.build(points, center, bandwidth_scale=1.0)
        sharp = VisualProfile.build(points, center, bandwidth_scale=0.3)
        assert (
            sharp.statistics.peak_to_median > smooth.statistics.peak_to_median
        )

    def test_query_cluster_indices(self, blob_2d):
        points, center = blob_2d
        profile = VisualProfile.build(points, center, resolution=40)
        tau = profile.statistics.peak_density * 0.2
        idx = profile.query_cluster_indices(points, tau)
        # Mostly blob points (the first 200).
        assert idx.size > 50
        assert np.mean(idx < 200) > 0.9

    def test_cluster_size_curve_monotone(self, blob_2d):
        points, center = blob_2d
        profile = VisualProfile.build(points, center, resolution=30)
        taus = np.linspace(0.01, profile.statistics.peak_density, 8)
        sizes = profile.cluster_size_curve(points, taus)
        assert np.all(np.diff(sizes) <= 0)


class TestProfileStatistics:
    def test_statistics_fields(self, blob_2d):
        points, center = blob_2d
        grid = DensityGrid(points, resolution=20, include=center)
        stats = compute_profile_statistics(grid, center)
        assert 0.0 <= stats.query_percentile <= 1.0
        assert stats.peak_density >= stats.median_density


class TestLateralDensityPlot:
    def test_build(self, blob_2d, rng):
        points, center = blob_2d
        profile = VisualProfile.build(points, center)
        plot = LateralDensityPlot.build(profile, rng, count=500)
        assert plot.samples.shape == (500, 2)
        assert np.allclose(plot.query_2d, center)


class TestSeparators:
    def test_density_separator_selects_cluster(self, blob_2d):
        points, center = blob_2d
        profile = VisualProfile.build(points, center, resolution=40)
        sep = DensitySeparator(profile.statistics.peak_density * 0.2)
        mask = sep.select(profile.grid, center, points)
        assert mask[:200].mean() > 0.8
        assert mask[200:].mean() < 0.3

    def test_reject_view_selects_nothing(self, blob_2d):
        points, center = blob_2d
        profile = VisualProfile.build(points, center)
        mask = RejectView().select(profile.grid, center, points)
        assert not mask.any()

    def test_polygonal_separator_halfplane(self, blob_2d):
        points, center = blob_2d
        profile = VisualProfile.build(points, center)
        # A vertical line at x = 0.5; query at 0.5 -> on boundary side.
        sep = PolygonalSeparator.from_lines([((1.0, 0.0), 0.45)])
        mask = sep.select(profile.grid, center, points)
        selected = points[mask]
        assert np.all(selected[:, 0] >= 0.45)

    def test_polygonal_no_lines_selects_all(self, blob_2d):
        points, center = blob_2d
        profile = VisualProfile.build(points, center)
        sep = PolygonalSeparator.from_lines([])
        assert sep.select(profile.grid, center, points).all()

    def test_polygonal_two_lines_quadrant(self, blob_2d):
        points, center = blob_2d
        profile = VisualProfile.build(points, center)
        sep = PolygonalSeparator.from_lines(
            [((1.0, 0.0), 0.4), ((0.0, 1.0), 0.4)]
        )
        mask = sep.select(profile.grid, center, points)
        selected = points[mask]
        assert np.all(selected[:, 0] >= 0.4)
        assert np.all(selected[:, 1] >= 0.4)

    def test_polygonal_invalid_normal(self):
        with pytest.raises(ConfigurationError):
            PolygonalSeparator.from_lines([((0.0, 0.0), 1.0)])

    def test_polygonal_wrong_dim(self):
        with pytest.raises(DimensionalityError):
            PolygonalSeparator.from_lines([((1.0, 0.0, 0.0), 1.0)])

    def test_polygonal_normalizes(self):
        sep = PolygonalSeparator.from_lines([((2.0, 0.0), 1.0)])
        normal, offset = sep.lines[0]
        assert normal == (1.0, 0.0)
        assert offset == 0.5
