"""Property-based tests for grid connectivity (hypothesis).

Covers the flood fill's structural invariants (transposition symmetry,
seed membership, threshold monotonicity) and pins the vectorized
component labeling of :func:`repro.density.connectivity.component_labels`
to the pre-vectorization BFS reference sweep on random grids *and* on
real density-grid corner tests.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density.connectivity import (
    MIN_CORNERS_ABOVE,
    bfs_parity,
    component_labels,
    connected_region,
    count_components,
    flood_fill_mask,
    region_count_at,
)
from repro.density.grid import DensityGrid
from repro.exceptions import ConfigurationError


@st.composite
def boolean_grids(draw):
    """Random boolean grids of varied shape and fill fraction."""
    rows = draw(st.integers(min_value=1, max_value=14))
    cols = draw(st.integers(min_value=1, max_value=14))
    fill = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    return rng.random((rows, cols)) < fill


@st.composite
def grids_with_seed_cell(draw):
    """A random boolean grid plus a cell index inside it."""
    q = draw(boolean_grids())
    i = draw(st.integers(min_value=0, max_value=q.shape[0] - 1))
    j = draw(st.integers(min_value=0, max_value=q.shape[1] - 1))
    return q, (i, j)


@st.composite
def point_clouds(draw):
    """Small random 2-D point clouds (for real DensityGrid cases)."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=10, max_value=60))
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(n, 2))


# ----------------------------------------------------------------------
# flood_fill_mask invariants
# ----------------------------------------------------------------------
@given(grids_with_seed_cell())
@settings(max_examples=60, deadline=None)
def test_flood_fill_transposition_invariance(case):
    """Filling the transposed grid from the swapped seed transposes."""
    q, (i, j) = case
    direct = flood_fill_mask(q, (i, j))
    transposed = flood_fill_mask(q.T, (j, i))
    assert np.array_equal(transposed, direct.T)


@given(grids_with_seed_cell())
@settings(max_examples=60, deadline=None)
def test_flood_fill_seed_membership(case):
    """The seed is in its own region iff it qualifies; mask ⊆ qualifies."""
    q, cell = case
    mask = flood_fill_mask(q, cell)
    assert mask[cell] == q[cell]
    if not q[cell]:
        assert not mask.any()
    # The fill never escapes the qualifying set.
    assert not np.any(mask & ~q)


@given(grids_with_seed_cell())
@settings(max_examples=60, deadline=None)
def test_flood_fill_idempotent_on_own_region(case):
    """Re-filling from any member cell reproduces the same region."""
    q, cell = case
    mask = flood_fill_mask(q, cell)
    members = np.argwhere(mask)
    if members.size == 0:
        return
    other = tuple(int(v) for v in members[len(members) // 2])
    assert np.array_equal(flood_fill_mask(q, other), mask)


@given(grids_with_seed_cell(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_flood_fill_monotone_in_threshold(case, keep):
    """Shrinking the qualifying set never grows the region (τ monotone).

    ``qualifies`` at a higher noise threshold is always a subset of the
    lower-threshold set; the region from the same seed must shrink with
    it.  We model the τ sweep directly as a nested pair of masks.
    """
    q_lo, cell = case
    rng = np.random.default_rng(int(keep * 10_000))
    q_hi = q_lo & (rng.random(q_lo.shape) < keep)  # nested: q_hi ⊆ q_lo
    q_hi[cell] = q_lo[cell]  # keep the seed's own status comparable
    mask_hi = flood_fill_mask(q_hi, cell)
    mask_lo = flood_fill_mask(q_lo, cell)
    assert np.all(mask_lo[mask_hi])


@given(point_clouds(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=25, deadline=None)
def test_region_monotone_in_tau_on_real_grids(points, frac):
    """On a real density grid, R(τ_hi, Q) ⊆ R(τ_lo, Q)."""
    grid = DensityGrid(points, resolution=12)
    query = points[0]
    peak = float(grid.density.max())
    lo = connected_region(grid, query, 0.4 * frac * peak)
    hi = connected_region(grid, query, frac * peak)
    assert np.all(lo.mask[hi.mask])


# ----------------------------------------------------------------------
# component_labels vs the BFS reference
# ----------------------------------------------------------------------
@given(boolean_grids())
@settings(max_examples=60, deadline=None)
def test_component_labels_match_flood_fill_partition(q):
    """Each label class is exactly one flood-fill region."""
    labels = component_labels(q)
    assert labels.shape == q.shape
    assert np.all((labels == -1) == ~q)
    seen = np.zeros_like(q, dtype=bool)
    for i, j in np.argwhere(q & ~seen):
        if seen[i, j]:
            continue
        region = flood_fill_mask(q, (int(i), int(j)))
        seen |= region
        # All member cells share one label, and nothing else has it.
        label = labels[i, j]
        assert np.all((labels == label) == region)


@given(boolean_grids())
@settings(max_examples=80, deadline=None)
def test_count_components_vectorized_equals_bfs(q):
    """The vectorized count agrees with the reference sweep everywhere."""
    with bfs_parity():
        assert count_components(q, method="vectorized") == count_components(
            q, method="bfs"
        )


@given(point_clouds(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=20, deadline=None)
def test_region_count_methods_agree_on_real_grids(points, frac):
    """All three region counters agree on genuine corner-test grids."""
    grid = DensityGrid(points, resolution=12)
    tau = frac * float(grid.density.max())
    with bfs_parity():
        reference = region_count_at(grid, tau, method="bfs")
    assert region_count_at(grid, tau, method="vectorized") == reference
    assert region_count_at(grid, tau, method="merge_tree") == reference
    assert region_count_at(grid, tau) == reference  # merge tree is default


def test_component_labels_canonical_roots():
    """Labels are the smallest flat index of their component."""
    q = np.array(
        [
            [1, 1, 0, 1],
            [0, 1, 0, 1],
            [1, 0, 0, 0],
            [1, 1, 1, 1],
        ],
        dtype=bool,
    )
    labels = component_labels(q)
    assert labels[0, 0] == 0 and labels[1, 1] == 0  # top-left blob
    assert labels[0, 3] == 3 and labels[1, 3] == 3  # right column
    assert labels[2, 0] == 8  # bottom component rooted at flat id 8
    assert labels[3, 3] == 8  # connected along the bottom row
    assert count_components(q) == 3


def test_count_components_rejects_unknown_method():
    with pytest.raises(ConfigurationError):
        count_components(np.ones((2, 2), dtype=bool), method="magic")


def test_corner_test_qualifying_grid_roundtrip(blob_2d):
    """End-to-end: corner-test grids feed both counters identically."""
    points, _ = blob_2d
    grid = DensityGrid(points, resolution=20)
    for frac in (0.0, 0.1, 0.3, 0.7):
        tau = frac * float(grid.density.max())
        qualifies = grid.corners_above(tau) >= MIN_CORNERS_ABOVE
        with bfs_parity():
            assert count_components(qualifies) == count_components(
                qualifies, method="bfs"
            )
