"""Property-based parity tests for the merge-tree connectivity subsystem.

The contract locked in here is the tentpole of ROADMAP item 2: every
answer the :class:`repro.density.merge_tree.MergeTree` gives — region
masks, component counts, full τ-sweeps — must be **element-identical**
to the BFS flood fill over the Definition-2.2 qualifying set, for every
``tau`` including exact birth-level boundaries and tie-heavy grids.

Golden-journal replay parity (the committed flight-recorder baseline
re-executing byte-identically through the merge-tree path) is covered
by ``tests/obs/test_replay.py::test_committed_golden_journal``.
"""

from __future__ import annotations

import pickle
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density import connectivity as conn
from repro.density.cache import (
    DensityGridCache,
    disabled_density_cache,
    get_density_cache,
    set_density_cache,
)
from repro.density.connectivity import (
    MIN_CORNERS_ABOVE,
    bfs_parity,
    connected_region,
    count_components,
    flood_fill_mask,
    region_count_at,
)
from repro.density.grid import DensityGrid
from repro.density.merge_tree import MergeTree, cell_birth_levels
from repro.density.profiles import VisualProfile
from repro.exceptions import ConfigurationError, DimensionalityError
from repro.obs.metrics import REGISTRY


@st.composite
def density_arrays(draw):
    """Random ``(p, p)`` density arrays; half are tie-heavy integers."""
    p = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    ties = draw(st.booleans())
    rng = np.random.default_rng(seed)
    if ties:
        # Small integer range forces many equal birth levels, the case
        # where sweep ordering could plausibly diverge from the BFS.
        return rng.integers(0, 4, size=(p, p)).astype(float)
    return rng.random((p, p))


def _taus_for(births: np.ndarray, rng: np.random.Generator) -> list[float]:
    """Thresholds probing the interesting range, boundaries included."""
    taus = [-1.0, 0.0, float(births.min()), float(births.max()), 1.0]
    # Exact birth levels exercise the strict-inequality boundary.
    flat = np.unique(births.ravel())
    taus.extend(float(t) for t in rng.choice(flat, size=min(3, flat.size)))
    taus.extend(float(t) for t in rng.uniform(births.min() - 0.1, births.max() + 0.1, 3))
    return taus


# ----------------------------------------------------------------------
# Core parity: merge tree == BFS flood fill, for all tau
# ----------------------------------------------------------------------
@given(density_arrays(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_region_masks_match_flood_fill(density, seed):
    """``region_at(tau, cell)`` equals the BFS mask for every probed tau."""
    rng = np.random.default_rng(seed)
    births = cell_birth_levels(density)
    tree = MergeTree.from_density(density)
    rows, cols = births.shape
    cell = (int(rng.integers(rows)), int(rng.integers(cols)))
    for tau in _taus_for(births, rng):
        qualifies = births > tau
        expected = flood_fill_mask(qualifies, cell)
        got = tree.region_at(tau, cell)
        assert np.array_equal(got, expected), (
            f"mask mismatch at tau={tau} cell={cell}"
        )


@given(density_arrays(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_component_counts_match_reference(density, seed):
    """``component_count_at`` equals ``count_components`` for every tau."""
    rng = np.random.default_rng(seed)
    births = cell_birth_levels(density)
    tree = MergeTree.from_density(density)
    for tau in _taus_for(births, rng):
        expected = count_components(births > tau)
        assert tree.component_count_at(tau) == expected, f"tau={tau}"


@given(density_arrays(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_region_sweep_is_tau_monotone_and_consistent(density, seed):
    """Sweep rows equal per-tau lookups and nest as tau rises."""
    rng = np.random.default_rng(seed)
    births = cell_birth_levels(density)
    tree = MergeTree.from_density(density)
    rows, cols = births.shape
    cell = (int(rng.integers(rows)), int(rng.integers(cols)))
    taus = np.sort(np.asarray(_taus_for(births, rng)))
    stack = tree.region_sweep(taus, cell)
    assert stack.shape == (taus.size, rows, cols)
    for pos, tau in enumerate(taus):
        assert np.array_equal(stack[pos], tree.region_at(tau, cell))
        if pos:
            # Higher tau never adds cells: R(tau_hi) subset of R(tau_lo).
            assert np.all(stack[pos - 1][stack[pos]])


@given(density_arrays())
@settings(max_examples=40, deadline=None)
def test_component_counts_vectorized_matches_scalar(density):
    births = cell_birth_levels(density)
    tree = MergeTree.from_density(density)
    taus = np.unique(np.concatenate([births.ravel(), [-1.0, births.max() + 1.0]]))
    counts = tree.component_counts(taus)
    assert counts.tolist() == [tree.component_count_at(t) for t in taus]


@given(density_arrays(), st.floats(min_value=-0.5, max_value=1.5))
@settings(max_examples=40, deadline=None)
def test_birth_levels_encode_corner_test(density, tau):
    """``tau < birth`` is exactly Definition 2.2's 3-corner test."""
    grid_qualifies = (
        np.stack(
            [
                density[:-1, :-1] > tau,
                density[1:, :-1] > tau,
                density[:-1, 1:] > tau,
                density[1:, 1:] > tau,
            ]
        ).sum(axis=0)
        >= MIN_CORNERS_ABOVE
    )
    assert np.array_equal(cell_birth_levels(density) > tau, grid_qualifies)


# ----------------------------------------------------------------------
# End-to-end on real DensityGrid objects
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=20, deadline=None)
def test_connected_region_methods_identical(seed, frac):
    """``connected_region`` merge-tree vs BFS: same mask, seeded, cell."""
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 1.0, size=(40, 2))
    grid = DensityGrid(points, resolution=10)
    query = points[int(rng.integers(points.shape[0]))]
    tau = frac * float(grid.density.max())
    fast = connected_region(grid, query, tau)
    with bfs_parity():
        reference = connected_region(grid, query, tau, method="bfs")
    assert np.array_equal(fast.mask, reference.mask)
    assert fast.seeded == reference.seeded
    assert fast.query_cell == reference.query_cell
    assert fast.threshold == reference.threshold


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_cluster_sweep_matches_per_tau_bfs(seed):
    """One profile sweep equals the per-threshold BFS cluster masks."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(60, 2))
    profile = VisualProfile.build(points, points[0], resolution=12)
    peak = float(profile.grid.density.max())
    taus = np.linspace(0.0, peak, 9)
    sizes, masks = profile.cluster_sweep(points, taus)
    for pos, tau in enumerate(taus):
        with bfs_parity():
            region = connected_region(
                profile.grid, profile.query_2d, float(tau), method="bfs"
            )
        expected = conn.points_in_region(profile.grid, region, points)
        assert np.array_equal(masks[pos], expected), f"tau={tau}"
        assert sizes[pos] == int(expected.sum())


def test_cluster_size_curve_unchanged_semantics():
    rng = np.random.default_rng(7)
    points = rng.normal(size=(50, 2))
    profile = VisualProfile.build(points, points[0], resolution=10)
    taus = np.linspace(0.0, float(profile.grid.density.max()), 6)
    curve = profile.cluster_size_curve(points, taus)
    expected = [
        profile.query_cluster_indices(points, float(t)).size for t in taus
    ]
    assert curve.tolist() == expected
    # Non-increasing in tau, as documented.
    assert all(curve[i] >= curve[i + 1] for i in range(curve.size - 1))


# ----------------------------------------------------------------------
# Lifecycle: lazy build, content-addressed cache, pickling
# ----------------------------------------------------------------------
def test_grid_merge_tree_is_lazy_and_sticky():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(30, 2))
    with disabled_density_cache():
        grid = DensityGrid(points, resolution=8)
        tree = grid.merge_tree
        assert isinstance(tree, MergeTree)
        assert grid.merge_tree is tree  # cached on the instance
        assert tree.shape == (7, 7)
        assert np.array_equal(tree.births, cell_birth_levels(grid.density))


def test_tree_shared_across_byte_identical_grids():
    rng = np.random.default_rng(1)
    points = rng.normal(size=(30, 2))
    previous = get_density_cache()
    try:
        cache = DensityGridCache()
        set_density_cache(cache)
        g1 = DensityGrid(points, resolution=8)
        g2 = DensityGrid(points, resolution=8)
        t1 = g1.merge_tree
        t2 = g2.merge_tree
        assert t1 is t2, "byte-identical grids must share one tree"
        stats = cache.stats()
        assert stats["tree_hits"] == 1
        assert stats["tree_misses"] == 1
        assert stats["tree_entries"] == 1
        cache.clear()
        assert cache.stats()["tree_entries"] == 0
    finally:
        set_density_cache(previous)


def test_tree_store_evicts_beyond_capacity():
    cache = DensityGridCache(max_entries=2)
    trees = {}
    for k in range(3):
        density = np.full((3, 3), float(k))
        key = cache.tree_key_for(density)
        trees[k] = (key, MergeTree.from_density(density))
        cache.put_tree(key, trees[k][1])
    assert cache.fetch_tree(trees[0][0]) is None  # oldest evicted
    assert cache.fetch_tree(trees[2][0]) is trees[2][1]


def test_merge_tree_pickle_roundtrip():
    rng = np.random.default_rng(2)
    density = rng.random((9, 9))
    tree = MergeTree.from_density(density)
    clone = pickle.loads(pickle.dumps(tree))
    cell = (3, 4)
    for tau in (0.0, 0.25, 0.5, float(density.max())):
        assert np.array_equal(
            clone.region_at(tau, cell), tree.region_at(tau, cell)
        )
        assert clone.component_count_at(tau) == tree.component_count_at(tau)


def test_merge_tree_validates_inputs():
    with pytest.raises(DimensionalityError):
        cell_birth_levels(np.arange(4.0))
    with pytest.raises(DimensionalityError):
        cell_birth_levels(np.ones((1, 5)))
    tree = MergeTree.from_density(np.random.default_rng(3).random((5, 5)))
    with pytest.raises(ConfigurationError):
        tree.region_at(0.1, (4, 0))  # cell grid is 4x4
    with pytest.raises(ConfigurationError):
        tree.merge_levels_from((-1, 0))


# ----------------------------------------------------------------------
# Counter family and the BFS deprecation shim
# ----------------------------------------------------------------------
def test_flood_fill_counters_move_in_lockstep():
    rng = np.random.default_rng(4)
    points = rng.normal(size=(30, 2))
    grid = DensityGrid(points, resolution=8)
    canonical = REGISTRY.counter("connectivity.flood_fill.calls")
    legacy = REGISTRY.counter("connectivity.flood_fills")
    c0, l0 = canonical.value, legacy.value
    with bfs_parity():
        connected_region(grid, points[0], 0.1, method="bfs")
    assert canonical.value == c0 + 1
    assert legacy.value == l0 + 1
    # The merge-tree path performs no flood fill at all.
    connected_region(grid, points[0], 0.1)
    assert canonical.value == c0 + 1
    assert legacy.value == l0 + 1


def test_bfs_outside_parity_warns_once(monkeypatch):
    monkeypatch.setattr(conn, "_BFS_WARNED", False)
    q = np.ones((2, 2), dtype=bool)
    with pytest.warns(DeprecationWarning, match="merge_tree"):
        count_components(q, method="bfs")
    # Second use is silent (one-time warning).
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        count_components(q, method="bfs")


def test_bfs_parity_context_suppresses_warning(monkeypatch):
    monkeypatch.setattr(conn, "_BFS_WARNED", False)
    q = np.ones((2, 2), dtype=bool)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with bfs_parity():
            count_components(q, method="bfs")
    assert conn._BFS_WARNED is False


def test_connected_region_rejects_unknown_method():
    rng = np.random.default_rng(5)
    points = rng.normal(size=(20, 2))
    grid = DensityGrid(points, resolution=6)
    with pytest.raises(ConfigurationError):
        connected_region(grid, points[0], 0.1, method="magic")


def test_region_count_default_is_merge_tree():
    rng = np.random.default_rng(6)
    points = rng.normal(size=(40, 2))
    grid = DensityGrid(points, resolution=10)
    lookups = REGISTRY.counter("connectivity.merge_tree.lookups")
    before = lookups.value
    region_count_at(grid, 0.2)
    assert lookups.value > before
