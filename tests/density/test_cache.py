"""Unit tests for the bounded LRU density-grid cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.density.cache import (
    DensityGridCache,
    disabled_density_cache,
    fingerprint_arrays,
    get_density_cache,
    set_density_cache,
)
from repro.density.kde import KernelDensityEstimator
from repro.exceptions import ConfigurationError


@pytest.fixture
def fresh_cache():
    """Install a fresh process-global cache; restore the lazy default."""
    cache = DensityGridCache(max_entries=16)
    set_density_cache(cache)
    try:
        yield cache
    finally:
        set_density_cache(DensityGridCache())


def _key(i: int) -> bytes:
    return fingerprint_arrays(np.array([i]))


def test_fingerprint_distinguishes_shape_and_dtype():
    flat = np.arange(8, dtype=np.float64)
    assert fingerprint_arrays(flat) != fingerprint_arrays(flat.reshape(4, 2))
    assert fingerprint_arrays(flat) != fingerprint_arrays(
        flat.astype(np.float32)
    )
    assert fingerprint_arrays(flat) == fingerprint_arrays(flat.copy())


def test_fingerprint_handles_non_contiguous_views():
    base = np.arange(16, dtype=float).reshape(4, 4)
    strided = base[:, ::2]
    assert fingerprint_arrays(strided) == fingerprint_arrays(
        np.ascontiguousarray(strided)
    )


def test_lru_bound_and_eviction_order():
    cache = DensityGridCache(max_entries=3)
    for i in range(3):
        cache.put(_key(i), np.full((2, 2), float(i)))
    assert len(cache) == 3
    # Touch key 0 so it becomes most recently used.
    assert cache.fetch(_key(0)) is not None
    cache.put(_key(3), np.full((2, 2), 3.0))
    assert len(cache) == 3
    assert cache.fetch(_key(1)) is None  # the true LRU was evicted
    assert cache.fetch(_key(0)) is not None
    assert cache.evictions == 1


def test_hit_miss_accounting_and_stats():
    cache = DensityGridCache(max_entries=4)
    assert cache.fetch(_key(1)) is None
    cache.put(_key(1), np.ones((2, 2)))
    assert cache.fetch(_key(1)) is not None
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    assert stats["entries"] == 1


def test_fetch_returns_independent_copy():
    cache = DensityGridCache()
    cache.put(_key(7), np.zeros((3, 3)))
    first = cache.fetch(_key(7))
    first[:] = 99.0  # mutating the returned array must not poison the cache
    second = cache.fetch(_key(7))
    assert np.array_equal(second, np.zeros((3, 3)))


def test_oversized_entries_are_not_stored():
    cache = DensityGridCache(max_entries=4, max_entry_bytes=64)
    cache.put(_key(1), np.zeros((100, 100)))  # 80 KB >> 64 B
    assert len(cache) == 0
    cache.put(_key(2), np.zeros((2, 2)))  # 32 B fits
    assert len(cache) == 1


def test_clear_keeps_statistics():
    cache = DensityGridCache()
    cache.put(_key(1), np.ones((2, 2)))
    cache.fetch(_key(1))
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1


def test_rejects_nonpositive_capacity():
    with pytest.raises(ConfigurationError):
        DensityGridCache(max_entries=0)


# ----------------------------------------------------------------------
# Integration with the KDE grid evaluation
# ----------------------------------------------------------------------
def test_grid_evaluation_hits_cache_and_is_byte_identical(fresh_cache, rng):
    points = rng.normal(size=(80, 2))
    kde = KernelDensityEstimator(points)
    gx = np.linspace(-2, 2, 25)
    gy = np.linspace(-2, 2, 25)
    with disabled_density_cache():
        cold = kde.evaluate_on_grid(gx, gy)
    first = kde.evaluate_on_grid(gx, gy)   # miss: computes and stores
    second = kde.evaluate_on_grid(gx, gy)  # hit: served from cache
    assert fresh_cache.hits >= 1
    assert first.tobytes() == cold.tobytes()
    assert second.tobytes() == cold.tobytes()


def test_distinct_inputs_never_collide(fresh_cache, rng):
    points = rng.normal(size=(50, 2))
    kde = KernelDensityEstimator(points)
    gx = np.linspace(-1, 1, 10)
    a = kde.evaluate_on_grid(gx, gx)
    b = kde.evaluate_on_grid(gx + 0.1, gx)
    assert a.shape == b.shape
    assert a.tobytes() != b.tobytes()


def test_non_gaussian_kernels_bypass_the_cache(fresh_cache, rng):
    from repro.density.kernels import epanechnikov_kernel

    points = rng.normal(size=(40, 2))
    kde = KernelDensityEstimator(points, kernel=epanechnikov_kernel)
    gx = np.linspace(-1, 1, 8)
    kde.evaluate_on_grid(gx, gx)
    kde.evaluate_on_grid(gx, gx)
    assert fresh_cache.hits == 0
    assert len(fresh_cache) == 0


def test_disabled_density_cache_round_trip(fresh_cache):
    assert get_density_cache() is fresh_cache
    with disabled_density_cache():
        assert get_density_cache() is None
    assert get_density_cache() is fresh_cache
