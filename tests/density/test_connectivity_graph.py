"""Unit tests for exact point-level density connectivity."""

import numpy as np
import pytest

from repro.density.connectivity_graph import (
    exact_density_connected,
    grid_vs_exact_agreement,
)
from repro.density.kde import KernelDensityEstimator
from repro.exceptions import ConfigurationError, DimensionalityError


@pytest.fixture
def two_blobs(rng):
    left = np.array([0.2, 0.5]) + rng.normal(0, 0.02, size=(120, 2))
    right = np.array([0.8, 0.5]) + rng.normal(0, 0.02, size=(120, 2))
    return np.vstack([left, right])


class TestExactConnectivity:
    def test_separates_blobs(self, two_blobs):
        query = np.array([0.2, 0.5])
        kde = KernelDensityEstimator(two_blobs)
        tau = 0.1 * kde.evaluate(query)
        region = exact_density_connected(two_blobs, query, tau)
        assert region.query_qualifies
        assert region.member_mask[:120].mean() > 0.9
        assert region.member_mask[120:].mean() < 0.05

    def test_query_below_threshold_empty(self, two_blobs):
        query = np.array([0.5, 0.5])  # the gap
        kde = KernelDensityEstimator(two_blobs)
        tau = 0.5 * kde.evaluate(np.array([0.2, 0.5]))
        region = exact_density_connected(two_blobs, query, tau)
        assert not region.query_qualifies
        assert region.member_count == 0

    def test_zero_threshold_connects_by_radius(self, two_blobs):
        """At tau=0 everything qualifies; connectivity is radius-limited."""
        query = np.array([0.2, 0.5])
        region = exact_density_connected(two_blobs, query, 0.0, radius=0.05)
        # The gap between blobs exceeds the small radius.
        assert region.member_mask[:120].mean() > 0.9
        assert region.member_mask[120:].mean() < 0.05

    def test_large_radius_merges(self, two_blobs):
        query = np.array([0.2, 0.5])
        region = exact_density_connected(two_blobs, query, 0.0, radius=1.0)
        assert region.member_mask.all()

    def test_validation(self, two_blobs):
        with pytest.raises(DimensionalityError):
            exact_density_connected(two_blobs, np.zeros(3), 0.1)
        with pytest.raises(DimensionalityError):
            exact_density_connected(np.zeros(5), np.zeros(1), 0.1)
        with pytest.raises(ConfigurationError):
            exact_density_connected(two_blobs, np.zeros(2), 0.1, radius=0.0)

    def test_higher_dimensional_points(self, rng):
        """Definition 2.1 is dimension-agnostic; 3-D works too."""
        blob = rng.normal(0, 0.05, size=(80, 3))
        far = rng.normal(3, 0.05, size=(80, 3))
        points = np.vstack([blob, far])
        kde = KernelDensityEstimator(points)
        tau = 0.1 * kde.evaluate(np.zeros(3))
        region = exact_density_connected(points, np.zeros(3), tau)
        assert region.member_mask[:80].mean() > 0.8
        assert region.member_mask[80:].mean() < 0.1


class TestGridAgreement:
    def test_high_agreement_on_crisp_blobs(self, two_blobs):
        query = np.array([0.2, 0.5])
        kde = KernelDensityEstimator(two_blobs)
        tau = 0.1 * float(kde.evaluate(query))
        agreement = grid_vs_exact_agreement(
            two_blobs, query, tau, resolution=50
        )
        assert agreement > 0.8

    def test_agreement_bounded(self, rng):
        points = rng.uniform(size=(150, 2))
        agreement = grid_vs_exact_agreement(points, points[0], 0.01)
        assert 0.0 <= agreement <= 1.0

    def test_both_empty_is_perfect_agreement(self, two_blobs):
        query = np.array([0.5, 0.5])
        agreement = grid_vs_exact_agreement(two_blobs, query, 1e9)
        assert agreement == 1.0
