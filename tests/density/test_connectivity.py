"""Unit tests for repro.density.connectivity (Definition 2.2)."""

import numpy as np
import pytest

from repro.density.connectivity import (
    MIN_CORNERS_ABOVE,
    connected_region,
    density_connected_points,
    points_in_region,
    region_count_at,
)
from repro.density.grid import DensityGrid
from repro.exceptions import DimensionalityError


@pytest.fixture
def two_blob_grid(rng):
    """Two well-separated blobs; query in the left one."""
    left = np.array([0.2, 0.5]) + rng.normal(0, 0.02, size=(150, 2))
    right = np.array([0.8, 0.5]) + rng.normal(0, 0.02, size=(150, 2))
    points = np.vstack([left, right])
    grid = DensityGrid(points, resolution=40)
    return grid, points


class TestConnectedRegion:
    def test_query_region_contains_query_cell(self, two_blob_grid):
        grid, _ = two_blob_grid
        query = np.array([0.2, 0.5])
        region = connected_region(grid, query, threshold=grid.density.max() * 0.05)
        assert region.seeded
        assert region.mask[region.query_cell]

    def test_separated_blobs_excluded(self, two_blob_grid):
        grid, points = two_blob_grid
        query = np.array([0.2, 0.5])
        tau = grid.density.max() * 0.05
        region = connected_region(grid, query, tau)
        member = points_in_region(grid, region, points)
        # Left blob in, right blob out.
        assert member[:150].mean() > 0.9
        assert member[150:].mean() < 0.05

    def test_query_in_sparse_area_not_seeded(self, two_blob_grid):
        grid, _ = two_blob_grid
        query = np.array([0.5, 0.5])  # the gap between blobs
        tau = grid.density.max() * 0.2
        region = connected_region(grid, query, tau)
        assert not region.seeded
        assert region.is_empty
        assert region.cell_count == 0

    def test_zero_threshold_connects_everything(self, two_blob_grid):
        grid, points = two_blob_grid
        query = np.array([0.2, 0.5])
        region = connected_region(grid, query, threshold=0.0)
        member = points_in_region(grid, region, points)
        # With tau=0 every rectangle qualifies, so all points join.
        assert member.all()

    def test_monotone_in_threshold(self, two_blob_grid):
        grid, points = two_blob_grid
        query = np.array([0.2, 0.5])
        peak = grid.density.max()
        sizes = []
        for tau in (0.01 * peak, 0.1 * peak, 0.5 * peak):
            idx = density_connected_points(grid, query, tau, points)
            sizes.append(idx.size)
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_query_must_be_2d(self, two_blob_grid):
        grid, _ = two_blob_grid
        with pytest.raises(DimensionalityError):
            connected_region(grid, np.zeros(3), 0.1)

    def test_points_must_be_2d(self, two_blob_grid):
        grid, _ = two_blob_grid
        region = connected_region(grid, np.array([0.2, 0.5]), 0.0)
        with pytest.raises(DimensionalityError):
            points_in_region(grid, region, np.zeros((5, 3)))

    def test_empty_region_membership(self, two_blob_grid):
        grid, points = two_blob_grid
        region = connected_region(grid, np.array([0.5, 0.5]), grid.density.max())
        member = points_in_region(grid, region, points)
        assert not member.any()

    def test_min_corners_constant(self):
        assert MIN_CORNERS_ABOVE == 3


class TestRegionCount:
    def test_two_blobs_two_regions(self, two_blob_grid):
        grid, _ = two_blob_grid
        tau = grid.density.max() * 0.1
        assert region_count_at(grid, tau) == 2

    def test_zero_threshold_one_region(self, two_blob_grid):
        grid, _ = two_blob_grid
        assert region_count_at(grid, 0.0) == 1

    def test_above_peak_zero_regions(self, two_blob_grid):
        grid, _ = two_blob_grid
        assert region_count_at(grid, grid.density.max() * 2) == 0
