"""Grid-binned & subsampled KDE: error bounds, counters, connectivity.

The load-bearing guarantee is :func:`repro.density.binned.
binned_error_bound`: the docstring derives a rigorous uniform bound on
``max |f_binned - f_exact|`` and the hypothesis suite here holds the
implementation to it on random clouds, bandwidths, and grids.  The
connectivity tests check that the downstream consumers — merge-tree
region counting and the BFS reference — agree on binned grids exactly
as they do on exact ones.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density.binned import (
    DEFAULT_TRUNCATE,
    KDE_MODES,
    BinnedHistogram,
    binned_density_grid,
    binned_error_bound,
    subsample_indices,
)
from repro.density.cache import disabled_density_cache
from repro.density.connectivity import bfs_parity, region_count_at
from repro.density.grid import DensityGrid
from repro.density.kde import KernelDensityEstimator
from repro.exceptions import ConfigurationError, DimensionalityError
from repro.obs.metrics import counter_values


def _grid_axes(points, resolution, padding=0.05):
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    extent = np.maximum(hi - lo, 1e-9)
    lo = lo - padding * extent
    hi = hi + padding * extent
    return (
        np.linspace(lo[0], hi[0], resolution),
        np.linspace(lo[1], hi[1], resolution),
    )


@st.composite
def binned_cases(draw):
    """Random cloud + bandwidth + grid resolution for bound checks."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=5, max_value=400))
    resolution = draw(st.integers(min_value=16, max_value=48))
    hx = draw(st.floats(min_value=0.05, max_value=0.6))
    hy = draw(st.floats(min_value=0.05, max_value=0.6))
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, 1.0, size=(n, 2))
    return pts, np.array([hx, hy]), resolution


# ----------------------------------------------------------------------
# The documented error bound holds
# ----------------------------------------------------------------------
@given(binned_cases())
@settings(max_examples=60, deadline=None)
def test_binned_error_within_documented_bound(case):
    """max |f_binned - f_exact| <= binned_error_bound, always."""
    pts, h, resolution = case
    gx, gy = _grid_axes(pts, resolution)
    with disabled_density_cache():
        exact = KernelDensityEstimator(pts, bandwidth=h).evaluate_on_grid(
            gx, gy
        )
        binned = binned_density_grid(pts, h, gx, gy)
    bound = binned_error_bound(h, float(gx[1] - gx[0]), float(gy[1] - gy[0]))
    assert np.max(np.abs(binned - exact)) <= bound + 1e-12


@given(binned_cases(), st.floats(min_value=1.0, max_value=6.0))
@settings(max_examples=30, deadline=None)
def test_binned_error_bound_holds_for_any_truncate(case, truncate):
    """The truncation-tail term covers aggressive tap dropping too."""
    pts, h, resolution = case
    gx, gy = _grid_axes(pts, resolution)
    with disabled_density_cache():
        exact = KernelDensityEstimator(pts, bandwidth=h).evaluate_on_grid(
            gx, gy
        )
        binned = binned_density_grid(pts, h, gx, gy, truncate=truncate)
    bound = binned_error_bound(
        h, float(gx[1] - gx[0]), float(gy[1] - gy[0]), truncate=truncate
    )
    assert np.max(np.abs(binned - exact)) <= bound + 1e-12


def test_bound_shrinks_as_grid_refines():
    """Refining the grid tightens the snapping term linearly."""
    h = np.array([0.2, 0.2])
    coarse = binned_error_bound(h, 0.1, 0.1)
    fine = binned_error_bound(h, 0.01, 0.01)
    assert fine < coarse
    # The tail term is truncate-controlled, not grid-controlled.
    assert binned_error_bound(h, 0.01, 0.01, truncate=2.0) > fine


# ----------------------------------------------------------------------
# Histogram mechanics
# ----------------------------------------------------------------------
def test_histogram_conserves_mass_and_reblurs(blob_2d):
    points, _ = blob_2d
    gx, gy = _grid_axes(points, 32)
    hist = BinnedHistogram(points, gx, gy)
    assert hist.counts.sum() == pytest.approx(points.shape[0])
    assert hist.total_weight == pytest.approx(points.shape[0])
    dx, dy = hist.cell_size
    assert dx == pytest.approx(float(gx[1] - gx[0]))
    assert dy == pytest.approx(float(gy[1] - gy[0]))
    # Re-blurring the retained histogram == one-shot evaluation.
    for h in (np.array([0.2, 0.3]), np.array([0.4, 0.1])):
        assert np.array_equal(
            hist.blur(h), binned_density_grid(points, h, gx, gy)
        )


def test_uniform_weights_match_unweighted(blob_2d):
    points, _ = blob_2d
    gx, gy = _grid_axes(points, 24)
    h = np.array([0.25, 0.25])
    unweighted = binned_density_grid(points, h, gx, gy)
    weighted = binned_density_grid(
        points, h, gx, gy, weights=np.full(points.shape[0], 3.0)
    )
    assert np.allclose(weighted, unweighted)


def test_histogram_input_validation():
    pts = np.random.default_rng(0).uniform(size=(20, 2))
    gx = np.linspace(0, 1, 10)
    with pytest.raises(DimensionalityError):
        BinnedHistogram(pts[:, :1], gx, gx)
    with pytest.raises(ConfigurationError):
        BinnedHistogram(pts, gx[:1], gx)
    with pytest.raises(ConfigurationError):
        BinnedHistogram(pts, gx, gx, weights=np.ones(3))
    with pytest.raises(ConfigurationError):
        BinnedHistogram(pts, gx, gx, weights=np.zeros(20))
    hist = BinnedHistogram(pts, gx, gx)
    with pytest.raises(ConfigurationError):
        hist.blur(np.array([0.1, 0.1, 0.1]))
    with pytest.raises(ConfigurationError):
        hist.blur(np.array([0.1, -0.1]))
    with pytest.raises(ConfigurationError):
        hist.blur(np.array([0.1, 0.1]), truncate=0.0)
    with pytest.raises(ConfigurationError):
        binned_error_bound(np.array([0.1, 0.0]), 0.01, 0.01)


# ----------------------------------------------------------------------
# Subsampling
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=5000),
)
@settings(max_examples=100, deadline=None)
def test_subsample_indices_properties(n, m):
    idx = subsample_indices(n, m)
    assert idx.shape == (min(n, m),)
    assert np.all(np.diff(idx) > 0)  # strictly increasing => unique
    assert idx[0] == 0
    assert idx[-1] < n
    # Pure function of (n, m): replay/checkpoint determinism.
    assert np.array_equal(idx, subsample_indices(n, m))


def test_subsample_degenerates_to_identity():
    assert np.array_equal(subsample_indices(5, 5), np.arange(5))
    assert np.array_equal(subsample_indices(5, 99), np.arange(5))
    with pytest.raises(ConfigurationError):
        subsample_indices(5, 0)


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
def test_binned_counters_track_work(blob_2d):
    points, _ = blob_2d
    gx, gy = _grid_axes(points, 20)
    before = counter_values()
    binned_density_grid(points, np.array([0.2, 0.2]), gx, gy)
    after = counter_values()
    assert after["kde.binned.cells"] - before["kde.binned.cells"] == 400
    assert after["kde.binned.evals"] - before["kde.binned.evals"] == 1


def test_subsample_counter_only_when_thinning():
    before = counter_values()
    subsample_indices(100, 40)
    mid = counter_values()
    assert mid["kde.subsample.points"] - before["kde.subsample.points"] == 40
    subsample_indices(100, 100)  # no-op subsample: no work counted
    after = counter_values()
    assert after["kde.subsample.points"] == mid["kde.subsample.points"]


# ----------------------------------------------------------------------
# DensityGrid / estimator integration
# ----------------------------------------------------------------------
def test_density_grid_binned_mode_within_bound(blob_2d):
    points, _ = blob_2d
    with disabled_density_cache():
        exact = DensityGrid(points, resolution=30)
        binned = DensityGrid(points, resolution=30, mode="binned")
    assert exact.mode == "exact"
    assert binned.mode == "binned"
    assert np.array_equal(binned.grid_x, exact.grid_x)
    h = exact.estimator.bandwidth
    bound = binned_error_bound(
        h,
        float(exact.grid_x[1] - exact.grid_x[0]),
        float(exact.grid_y[1] - exact.grid_y[0]),
    )
    assert np.max(np.abs(binned.density - exact.density)) <= bound + 1e-12


def test_mode_validation():
    pts = np.random.default_rng(1).uniform(size=(30, 2))
    assert KDE_MODES == ("exact", "binned", "subsampled")
    with pytest.raises(ConfigurationError):
        DensityGrid(pts, resolution=10, mode="subsampled")
    est = KernelDensityEstimator(pts)
    with pytest.raises(ConfigurationError):
        est.evaluate_on_grid(
            np.linspace(0, 1, 5), np.linspace(0, 1, 5), mode="magic"
        )


def test_cache_keys_are_mode_tagged(blob_2d):
    from repro.density.cache import DensityGridCache

    points, _ = blob_2d
    gx, gy = _grid_axes(points, 16)
    cache = DensityGridCache()
    h = np.array([0.2, 0.2])
    exact_key = cache.key_for(points, h, gx, gy)
    binned_key = cache.key_for(points, h, gx, gy, mode="binned")
    assert exact_key != binned_key
    assert exact_key == cache.key_for(points, h, gx, gy, mode="exact")


# ----------------------------------------------------------------------
# Connectivity agrees on binned grids
# ----------------------------------------------------------------------
@given(binned_cases(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=25, deadline=None)
def test_merge_tree_matches_bfs_on_binned_grids(case, frac):
    """Region counting is estimator-agnostic: binned grids agree too."""
    pts, _, resolution = case
    with disabled_density_cache():
        grid = DensityGrid(pts, resolution=min(resolution, 24), mode="binned")
    tau = frac * float(grid.density.max())
    with bfs_parity():
        reference = region_count_at(grid, tau, method="bfs")
    assert region_count_at(grid, tau, method="merge_tree") == reference
    assert region_count_at(grid, tau, method="vectorized") == reference


@pytest.mark.slow
def test_merge_tree_matches_bfs_at_paper_scale():
    """Paper-scale binned grid (p=40): full tau sweep, three methods."""
    rng = np.random.default_rng(42)
    centers = np.array([[0.0, 0.0], [3.0, 1.0], [-2.0, 2.5]])
    pts = (
        centers[rng.integers(0, 3, size=20_000)]
        + rng.standard_normal((20_000, 2)) * 0.6
    )
    with disabled_density_cache():
        grid = DensityGrid(pts, resolution=40, mode="binned")
    peak = float(grid.density.max())
    for frac in np.linspace(0.0, 1.0, 9):
        tau = frac * peak
        with bfs_parity():
            reference = region_count_at(grid, tau, method="bfs")
        assert region_count_at(grid, tau, method="merge_tree") == reference


def test_default_truncate_is_four_sigma():
    assert DEFAULT_TRUNCATE == 4.0
