"""Property-based tests for the density substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density.connectivity import connected_region, points_in_region
from repro.density.grid import DensityGrid
from repro.density.kde import KernelDensityEstimator


@st.composite
def point_clouds(draw):
    """Small random 2-D point clouds with a seed for reproducibility."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=10, max_value=80))
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(n, 2))


@given(point_clouds())
@settings(max_examples=25, deadline=None)
def test_kde_nonnegative_everywhere(points):
    kde = KernelDensityEstimator(points)
    rng = np.random.default_rng(0)
    where = rng.uniform(-1.0, 2.0, size=(40, 2))
    assert np.all(kde.evaluate(where) >= 0)


@given(point_clouds(), st.integers(min_value=3, max_value=25))
@settings(max_examples=25, deadline=None)
def test_grid_density_matches_estimator(points, resolution):
    grid = DensityGrid(points, resolution=resolution)
    # Every grid value equals the KDE evaluated at that node.
    i, j = resolution // 2, resolution // 3
    node = np.array([[grid.grid_x[i], grid.grid_y[j]]])
    assert np.isclose(grid.density[i, j], grid.estimator.evaluate(node)[0])


@given(point_clouds(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=25, deadline=None)
def test_region_membership_monotone_in_threshold(points, frac):
    """A higher separator never admits more points (anti-monotone)."""
    grid = DensityGrid(points, resolution=15)
    query = points[0]
    peak = grid.density.max()
    lo_region = connected_region(grid, query, frac * peak * 0.5)
    hi_region = connected_region(grid, query, frac * peak)
    lo = points_in_region(grid, lo_region, points)
    hi = points_in_region(grid, hi_region, points)
    # Everything in the high-threshold region is in the low-threshold one.
    assert np.all(lo[hi])


@given(point_clouds())
@settings(max_examples=25, deadline=None)
def test_region_mask_shape_and_query_membership(points):
    grid = DensityGrid(points, resolution=12)
    query = points[0]
    region = connected_region(grid, query, 0.0)
    assert region.mask.shape == (11, 11)
    member = points_in_region(grid, region, query[np.newaxis, :])
    assert member[0]  # at tau=0 the query's own cell always qualifies


@given(point_clouds(), st.integers(min_value=1, max_value=300))
@settings(max_examples=20, deadline=None)
def test_lateral_samples_stay_near_grid(points, count):
    kde = KernelDensityEstimator(points)
    samples = kde.sample_lateral(count, np.random.default_rng(1))
    assert samples.shape == (count, 2)
    # Samples stay within a generously padded bounding box.
    lo = points.min(axis=0) - 0.5
    hi = points.max(axis=0) + 0.5
    assert np.all(samples >= lo) and np.all(samples <= hi)
