"""Property-based tests for separators and threshold-sweep machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density.grid import DensityGrid
from repro.density.separators import DensitySeparator, PolygonalSeparator


@st.composite
def views(draw):
    """A random 2-D point cloud with a blob, plus its density grid."""
    seed = draw(st.integers(min_value=0, max_value=5000))
    rng = np.random.default_rng(seed)
    blob = rng.normal(0.4, 0.05, size=(60, 2))
    noise = rng.uniform(0, 1, size=(60, 2))
    points = np.vstack([blob, noise])
    query = blob[0]
    grid = DensityGrid(points, resolution=18, include=query)
    return grid, points, query


@given(views(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=30, deadline=None)
def test_density_separator_antimonotone(view, frac):
    """Raising the separator never admits more points."""
    grid, points, query = view
    peak = grid.density.max()
    lo = DensitySeparator(frac * peak * 0.5).select(grid, query, points)
    hi = DensitySeparator(frac * peak).select(grid, query, points)
    assert np.all(lo[hi])  # hi-selection is a subset of lo-selection


@given(views())
@settings(max_examples=30, deadline=None)
def test_density_separator_at_zero_selects_all(view):
    grid, points, query = view
    mask = DensitySeparator(0.0).select(grid, query, points)
    assert mask.all()


@given(views())
@settings(max_examples=30, deadline=None)
def test_density_separator_above_peak_selects_none(view):
    grid, points, query = view
    mask = DensitySeparator(grid.density.max() * 2).select(grid, query, points)
    assert not mask.any()


@given(
    views(),
    st.floats(min_value=-0.5, max_value=0.5),
    st.floats(min_value=-0.5, max_value=0.5),
)
@settings(max_examples=30, deadline=None)
def test_polygonal_separator_always_keeps_query_side(view, nx, ny):
    """The query's own half-plane signature always matches itself, so
    any point equal to the query is always selected."""
    grid, points, query = view
    if abs(nx) + abs(ny) < 1e-6:
        return
    separator = PolygonalSeparator.from_lines(
        [((nx, ny), nx * query[0] + ny * query[1] - 0.1)]
    )
    with_query = np.vstack([points, query])
    mask = separator.select(grid, query, with_query)
    assert mask[-1]


@given(views(), st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_polygonal_more_lines_never_select_more(view, n_lines):
    """Adding separating lines can only shrink the selected region."""
    grid, points, query = view
    rng = np.random.default_rng(n_lines)
    lines = []
    previous_mask = np.ones(points.shape[0], dtype=bool)
    for _ in range(n_lines):
        normal = rng.normal(size=2)
        offset = float(normal @ query) - abs(rng.normal()) * 0.2
        lines.append(((float(normal[0]), float(normal[1])), offset))
        mask = PolygonalSeparator.from_lines(lines).select(
            grid, query, points
        )
        assert np.all(previous_mask[mask])
        previous_mask = mask
