"""Unit tests for repro.density.grid."""

import numpy as np
import pytest

from repro.density.grid import DensityGrid, GridBounds
from repro.exceptions import ConfigurationError, DimensionalityError


class TestGridBounds:
    def test_contains(self):
        b = GridBounds(0.0, 1.0, 0.0, 2.0)
        assert b.contains(np.array([0.5, 1.0]))
        assert not b.contains(np.array([1.5, 1.0]))
        assert b.width == 1.0 and b.height == 2.0


class TestDensityGrid:
    def test_density_shape(self, blob_2d):
        points, _ = blob_2d
        grid = DensityGrid(points, resolution=20)
        assert grid.density.shape == (20, 20)
        assert grid.cell_count == 19 * 19

    def test_requires_2d(self, rng):
        with pytest.raises(DimensionalityError):
            DensityGrid(rng.normal(size=(10, 3)))

    def test_resolution_minimum(self, blob_2d):
        with pytest.raises(ConfigurationError):
            DensityGrid(blob_2d[0], resolution=1)

    def test_bounds_cover_points(self, blob_2d):
        points, _ = blob_2d
        grid = DensityGrid(points)
        for pt in points[:20]:
            assert grid.bounds.contains(pt)

    def test_include_extends_bounds(self, blob_2d):
        points, _ = blob_2d
        outside = np.array([5.0, 5.0])
        grid = DensityGrid(points, include=outside)
        assert grid.bounds.contains(outside)

    def test_peak_near_blob(self, blob_2d):
        points, center = blob_2d
        grid = DensityGrid(points, resolution=30)
        i, j = np.unravel_index(np.argmax(grid.density), grid.density.shape)
        peak_xy = np.array([grid.grid_x[i], grid.grid_y[j]])
        assert np.linalg.norm(peak_xy - center) < 0.15

    def test_cell_of_consistency(self, blob_2d):
        points, _ = blob_2d
        grid = DensityGrid(points, resolution=15)
        for pt in points[:30]:
            i, j = grid.cell_of(pt)
            assert grid.grid_x[i] <= pt[0] <= grid.grid_x[i + 1] + 1e-12
            assert grid.grid_y[j] <= pt[1] <= grid.grid_y[j + 1] + 1e-12

    def test_cell_of_clamps_outside(self, blob_2d):
        grid = DensityGrid(blob_2d[0], resolution=10)
        i, j = grid.cell_of(np.array([99.0, -99.0]))
        assert i == 8 and j == 0

    def test_cells_of_matches_cell_of(self, blob_2d):
        points, _ = blob_2d
        grid = DensityGrid(points, resolution=12)
        batch = grid.cells_of(points[:25])
        singles = np.array([grid.cell_of(p) for p in points[:25]])
        assert np.array_equal(batch, singles)

    def test_corner_densities(self, blob_2d):
        grid = DensityGrid(blob_2d[0], resolution=10)
        corners = grid.corner_densities(3, 4)
        d = grid.density
        assert np.allclose(
            corners, [d[3, 4], d[4, 4], d[3, 5], d[4, 5]]
        )

    def test_corner_densities_out_of_range(self, blob_2d):
        grid = DensityGrid(blob_2d[0], resolution=10)
        with pytest.raises(ConfigurationError):
            grid.corner_densities(9, 0)

    def test_corners_above_counts(self, blob_2d):
        grid = DensityGrid(blob_2d[0], resolution=10)
        counts = grid.corners_above(-1.0)
        assert np.all(counts == 4)
        counts_hi = grid.corners_above(np.inf)
        assert np.all(counts_hi == 0)

    def test_interpolate_matches_grid_at_nodes(self, blob_2d):
        grid = DensityGrid(blob_2d[0], resolution=10)
        node = np.array([grid.grid_x[4], grid.grid_y[6]])
        assert grid.interpolate(node) == pytest.approx(grid.density[4, 6], rel=1e-9)

    def test_interpolate_between_nodes_bounded(self, blob_2d):
        grid = DensityGrid(blob_2d[0], resolution=10)
        mid = np.array(
            [
                (grid.grid_x[2] + grid.grid_x[3]) / 2,
                (grid.grid_y[2] + grid.grid_y[3]) / 2,
            ]
        )
        val = grid.interpolate(mid)
        cell = grid.corner_densities(2, 2)
        assert cell.min() - 1e-12 <= val <= cell.max() + 1e-12

    def test_density_at_exact_kde(self, blob_2d):
        points, center = blob_2d
        grid = DensityGrid(points, resolution=10)
        exact = grid.estimator.evaluate(center[np.newaxis, :])[0]
        assert grid.density_at(center[np.newaxis, :])[0] == pytest.approx(exact)
