"""Unit tests for repro.density.kernels and bandwidth rules."""

import numpy as np
import pytest
from scipy.integrate import quad

from repro.density.bandwidth import (
    bandwidth_rule_names,
    get_bandwidth_rule,
    robust_silverman_bandwidth,
    scott_bandwidth,
    silverman_bandwidth,
)
from repro.density.kernels import (
    epanechnikov_kernel,
    gaussian_kernel,
    get_kernel,
    kernel_names,
    triangular_kernel,
    uniform_kernel,
)
from repro.exceptions import ConfigurationError, EmptyDatasetError

ALL_KERNELS = [
    gaussian_kernel,
    epanechnikov_kernel,
    triangular_kernel,
    uniform_kernel,
]


class TestKernels:
    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_integrates_to_one_1d(self, kernel):
        total, _ = quad(lambda u: float(kernel(np.array([u]))), -10, 10)
        assert total == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_nonnegative(self, kernel):
        u = np.linspace(-3, 3, 101)[:, np.newaxis]
        assert np.all(kernel(u) >= 0)

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_symmetric(self, kernel):
        u = np.linspace(0.0, 2.0, 21)[:, np.newaxis]
        assert np.allclose(kernel(u), kernel(-u))

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_peak_at_origin(self, kernel):
        origin = kernel(np.zeros((1, 1)))[0]
        elsewhere = kernel(np.full((1, 1), 0.9))[0]
        assert origin >= elsewhere

    def test_product_form_2d(self):
        u = np.array([[0.5, -0.3]])
        expected = (
            gaussian_kernel(np.array([[0.5]])) * gaussian_kernel(np.array([[-0.3]]))
        )
        assert np.allclose(gaussian_kernel(u), expected)

    def test_compact_support(self):
        u = np.array([[1.5]])
        assert epanechnikov_kernel(u)[0] == 0.0
        assert triangular_kernel(u)[0] == 0.0
        assert uniform_kernel(u)[0] == 0.0

    def test_get_kernel(self):
        assert get_kernel("gaussian") is gaussian_kernel
        assert get_kernel("EPANECHNIKOV") is epanechnikov_kernel

    def test_get_kernel_unknown(self):
        with pytest.raises(ConfigurationError):
            get_kernel("mystery")

    def test_kernel_names_sorted(self):
        names = kernel_names()
        assert names == sorted(names)
        assert "gaussian" in names


class TestBandwidth:
    def test_silverman_formula(self):
        rng = np.random.default_rng(20)
        pts = rng.normal(size=(100, 1))
        h = silverman_bandwidth(pts)
        expected = 1.06 * pts.std(ddof=1) * 100 ** (-0.2)
        assert h[0] == pytest.approx(expected)

    def test_per_dimension(self):
        rng = np.random.default_rng(21)
        pts = rng.normal(size=(200, 2)) * np.array([1.0, 10.0])
        h = silverman_bandwidth(pts)
        assert h[1] > h[0] * 5

    def test_floor_on_degenerate_dimension(self):
        pts = np.column_stack([np.ones(50), np.linspace(0, 1, 50)])
        h = silverman_bandwidth(pts)
        assert h[0] > 0

    def test_1d_input(self):
        h = silverman_bandwidth(np.linspace(0, 1, 30))
        assert h.shape == (1,)

    def test_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            silverman_bandwidth(np.zeros((0, 2)))

    def test_robust_not_larger_than_plain_for_outliers(self):
        rng = np.random.default_rng(22)
        pts = np.concatenate([rng.normal(size=95), np.full(5, 50.0)])
        assert robust_silverman_bandwidth(pts)[0] <= silverman_bandwidth(pts)[0]

    def test_scott_positive(self):
        rng = np.random.default_rng(23)
        assert np.all(scott_bandwidth(rng.normal(size=(40, 3))) > 0)

    def test_rule_registry(self):
        assert get_bandwidth_rule("silverman") is silverman_bandwidth
        assert "scott" in bandwidth_rule_names()
        with pytest.raises(ConfigurationError):
            get_bandwidth_rule("nope")

    def test_single_point_fallback(self):
        h = silverman_bandwidth(np.array([[1.0, 2.0]]))
        assert np.all(h > 0)
