"""Unit tests for the oracle, heuristic, and scripted users."""

import io

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.density.profiles import VisualProfile
from repro.exceptions import ConfigurationError, InteractionError
from repro.geometry.subspace import Subspace
from repro.interaction.base import ProjectionView, UserDecision
from repro.interaction.heuristic import HeuristicUser
from repro.interaction.oracle import OracleUser, f1_score, fbeta_score
from repro.interaction.scripted import (
    AcceptEverythingUser,
    CallbackUser,
    FixedThresholdUser,
    ScriptedUser,
)
from repro.interaction.terminal import TerminalUser


@pytest.fixture
def cluster_view(rng):
    """A view with a crisp blob at the query plus background.

    Returns (view, dataset): points 0..149 are blob members.
    """
    center = np.array([0.3, 0.7])
    blob = center + rng.normal(0, 0.02, size=(150, 2))
    background = rng.uniform(0, 1, size=(350, 2))
    points = np.vstack([blob, background])
    labels = np.concatenate([np.zeros(150, dtype=int), np.ones(350, dtype=int)])
    dataset = Dataset(points=points, labels=labels)
    profile = VisualProfile.build(points, center, resolution=40, bandwidth_scale=0.4)
    view = ProjectionView(
        profile=profile,
        projected_points=points,
        query_2d=center,
        subspace=Subspace.from_axes([0, 1], 2),
        live_indices=np.arange(500),
        major_index=0,
        minor_index=0,
        total_points=500,
    )
    return view, dataset


@pytest.fixture
def noise_view(rng):
    """A uniform-noise view with the query at a random location."""
    points = rng.uniform(0, 1, size=(500, 2))
    query = points[0]
    profile = VisualProfile.build(points, query, resolution=40, bandwidth_scale=0.4)
    return ProjectionView(
        profile=profile,
        projected_points=points,
        query_2d=query,
        subspace=Subspace.from_axes([0, 1], 2),
        live_indices=np.arange(500),
        major_index=0,
        minor_index=0,
        total_points=500,
    )


class TestScores:
    def test_f1_perfect(self):
        sel = np.array([True, True, False])
        assert f1_score(sel, sel) == 1.0

    def test_f1_zero_overlap(self):
        assert f1_score(np.array([True, False]), np.array([False, True])) == 0.0

    def test_fbeta_weighs_recall(self):
        # High-recall low-precision selection.
        sel = np.array([True] * 10)
        rel = np.array([True] * 3 + [False] * 7)
        assert fbeta_score(sel, rel, 2.0) > fbeta_score(sel, rel, 1.0)

    def test_fbeta_equals_f1_at_beta_one(self):
        rng = np.random.default_rng(0)
        sel = rng.random(20) > 0.5
        rel = rng.random(20) > 0.5
        assert fbeta_score(sel, rel, 1.0) == pytest.approx(f1_score(sel, rel))


class TestOracleUser:
    def test_accepts_good_view(self, cluster_view):
        view, dataset = cluster_view
        user = OracleUser(dataset, query_index=0)
        decision = user.review_view(view)
        assert decision.accepted
        # Selection is mostly blob members.
        selected = np.flatnonzero(decision.selected_mask)
        assert np.mean(selected < 150) > 0.7
        assert user.views_accepted == 1

    def test_rejects_when_cluster_absent(self, noise_view, rng):
        labels = np.concatenate([[0], np.ones(499, dtype=int)])
        dataset = Dataset(points=noise_view.projected_points, labels=labels)
        user = OracleUser(dataset, query_index=0)
        decision = user.review_view(noise_view)
        assert not decision.accepted

    def test_noise_query_rejects(self, cluster_view):
        view, dataset = cluster_view
        noisy = Dataset(
            points=dataset.points,
            labels=np.full(dataset.size, -1),
        )
        user = OracleUser(noisy, query_index=0)
        assert not user.review_view(view).accepted

    def test_requires_labels_or_mask(self):
        ds = Dataset(points=np.ones((5, 2)))
        with pytest.raises(ConfigurationError):
            OracleUser(ds, 0)

    def test_relevant_mask_override(self, cluster_view):
        view, dataset = cluster_view
        mask = np.zeros(dataset.size, dtype=bool)
        mask[:150] = True
        user = OracleUser(dataset, 0, relevant_mask=mask)
        assert user.review_view(view).accepted

    def test_relevant_mask_wrong_shape(self, cluster_view):
        _, dataset = cluster_view
        with pytest.raises(ConfigurationError):
            OracleUser(dataset, 0, relevant_mask=np.ones(3, dtype=bool))

    def test_query_index_out_of_range(self, cluster_view):
        _, dataset = cluster_view
        with pytest.raises(ConfigurationError):
            OracleUser(dataset, dataset.size)


class TestHeuristicUser:
    def test_accepts_cluster_view(self, cluster_view):
        view, _ = cluster_view
        user = HeuristicUser()
        decision = user.review_view(view)
        assert decision.accepted
        selected = np.flatnonzero(decision.selected_mask)
        assert np.mean(selected < 150) > 0.6

    def test_rejects_noise_view(self, noise_view):
        user = HeuristicUser()
        assert not user.review_view(noise_view).accepted

    def test_rejects_query_off_peak(self, cluster_view, rng):
        view, _ = cluster_view
        # Same data but query in an empty corner.
        corner = np.array([0.02, 0.02])
        profile = VisualProfile.build(
            view.projected_points, corner, resolution=40, bandwidth_scale=0.4
        )
        off_view = ProjectionView(
            profile=profile,
            projected_points=view.projected_points,
            query_2d=corner,
            subspace=view.subspace,
            live_indices=view.live_indices,
            major_index=0,
            minor_index=0,
            total_points=500,
        )
        assert not HeuristicUser().review_view(off_view).accepted

    def test_counters(self, cluster_view, noise_view):
        view, _ = cluster_view
        user = HeuristicUser()
        user.review_view(view)
        user.review_view(noise_view)
        assert user.views_reviewed == 2
        assert user.views_accepted == 1


class TestScriptedUsers:
    def test_threshold_entries(self, cluster_view):
        view, _ = cluster_view
        tau = view.profile.statistics.peak_density * 0.2
        user = ScriptedUser([tau, "reject"])
        first = user.review_view(view)
        assert first.accepted
        second = user.review_view(view)
        assert not second.accepted
        assert user.remaining == 0

    def test_script_exhaustion(self, cluster_view):
        view, _ = cluster_view
        user = ScriptedUser([])
        with pytest.raises(InteractionError):
            user.review_view(view)

    def test_unknown_string_entry(self, cluster_view):
        view, _ = cluster_view
        user = ScriptedUser(["banana"])
        with pytest.raises(InteractionError):
            user.review_view(view)

    def test_decision_entry_wrong_length(self, cluster_view):
        view, _ = cluster_view
        bad = UserDecision(accepted=True, selected_mask=np.ones(3, dtype=bool))
        user = ScriptedUser([bad])
        with pytest.raises(InteractionError):
            user.review_view(view)

    def test_fixed_threshold_user(self, cluster_view):
        view, _ = cluster_view
        tau = view.profile.statistics.peak_density * 0.2
        decision = FixedThresholdUser(tau).review_view(view)
        assert decision.accepted
        assert decision.threshold == pytest.approx(tau)

    def test_fixed_threshold_empty_selection_rejects(self, cluster_view):
        view, _ = cluster_view
        decision = FixedThresholdUser(1e9).review_view(view)
        assert not decision.accepted

    def test_callback_user(self, cluster_view):
        view, _ = cluster_view
        user = CallbackUser(lambda v: UserDecision.reject(v.n_points))
        assert not user.review_view(view).accepted

    def test_callback_bad_return(self, cluster_view):
        view, _ = cluster_view
        user = CallbackUser(lambda v: "nope")
        with pytest.raises(InteractionError):
            user.review_view(view)

    def test_accept_everything(self, cluster_view):
        view, _ = cluster_view
        decision = AcceptEverythingUser().review_view(view)
        assert decision.selected_mask.all()


class TestTerminalUser:
    def test_scripted_session(self, cluster_view):
        view, _ = cluster_view
        tau = view.profile.statistics.peak_density * 0.2
        stdin = io.StringIO(f"{tau}\nok\n")
        stdout = io.StringIO()
        user = TerminalUser(input_stream=stdin, output_stream=stdout)
        decision = user.review_view(view)
        assert decision.accepted
        assert "selects" in stdout.getvalue()

    def test_skip(self, cluster_view):
        view, _ = cluster_view
        user = TerminalUser(
            input_stream=io.StringIO("skip\n"), output_stream=io.StringIO()
        )
        assert not user.review_view(view).accepted

    def test_garbage_then_eof(self, cluster_view):
        view, _ = cluster_view
        user = TerminalUser(
            input_stream=io.StringIO("wut\n"), output_stream=io.StringIO()
        )
        assert not user.review_view(view).accepted

    def test_ok_without_threshold(self, cluster_view):
        view, _ = cluster_view
        user = TerminalUser(
            input_stream=io.StringIO("ok\nskip\n"), output_stream=io.StringIO()
        )
        assert not user.review_view(view).accepted
