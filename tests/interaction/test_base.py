"""Unit tests for repro.interaction.base."""

import numpy as np
import pytest

from repro.density.profiles import VisualProfile
from repro.exceptions import InteractionError
from repro.geometry.subspace import Subspace
from repro.interaction.base import (
    ProjectionView,
    ThresholdSweep,
    UserDecision,
    validate_decision,
)


def make_view(points, query, *, total=0):
    profile = VisualProfile.build(points, query, resolution=25)
    return ProjectionView(
        profile=profile,
        projected_points=points,
        query_2d=np.asarray(query),
        subspace=Subspace.from_axes([0, 1], 2),
        live_indices=np.arange(len(points)),
        major_index=0,
        minor_index=0,
        total_points=total or len(points),
    )


class TestUserDecision:
    def test_reject_factory(self):
        d = UserDecision.reject(5)
        assert not d.accepted
        assert d.selected_mask.shape == (5,)
        assert d.selected_count == 0
        assert d.threshold is None

    def test_accepted_empty_mask_normalized_to_reject(self):
        d = UserDecision(accepted=True, selected_mask=np.zeros(4, dtype=bool))
        assert not d.accepted

    def test_selected_count(self):
        mask = np.array([True, False, True])
        d = UserDecision(accepted=True, selected_mask=mask, threshold=1.0)
        assert d.selected_count == 2

    def test_mask_coerced_to_bool(self):
        d = UserDecision(accepted=True, selected_mask=np.array([1, 0, 1]))
        assert d.selected_mask.dtype == bool


class TestValidateDecision:
    def test_valid(self, blob_2d):
        points, center = blob_2d
        view = make_view(points, center)
        d = UserDecision.reject(view.n_points)
        assert validate_decision(d, view) is d

    def test_mismatched_mask(self, blob_2d):
        points, center = blob_2d
        view = make_view(points, center)
        d = UserDecision.reject(view.n_points + 1)
        with pytest.raises(InteractionError):
            validate_decision(d, view)


class TestThresholdSweep:
    def test_sizes_non_increasing(self, blob_2d):
        points, center = blob_2d
        view = make_view(points, center)
        sweep = ThresholdSweep.over_view(view, steps=16)
        assert sweep.thresholds.size == 16
        assert np.all(np.diff(sweep.sizes) <= 0)

    def test_masks_align_with_sizes(self, blob_2d):
        points, center = blob_2d
        view = make_view(points, center)
        sweep = ThresholdSweep.over_view(view, steps=10)
        for mask, size in zip(sweep.masks, sweep.sizes):
            assert mask.sum() == size

    def test_thresholds_ascend(self, blob_2d):
        points, center = blob_2d
        view = make_view(points, center)
        sweep = ThresholdSweep.over_view(view)
        assert np.all(np.diff(sweep.thresholds) > 0)

    def test_top_threshold_below_query_density(self, blob_2d):
        points, center = blob_2d
        view = make_view(points, center)
        sweep = ThresholdSweep.over_view(view)
        assert sweep.thresholds[-1] <= view.profile.statistics.query_density

    def test_is_empty_for_degenerate(self):
        # Query far outside the data: query density ~ 0.
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 2))
        far = np.array([100.0, 100.0])
        view = make_view(points, far)
        sweep = ThresholdSweep.over_view(view)
        assert sweep.is_empty or sweep.sizes.max() >= 0  # no crash
