"""Protocol conformance: every shipped user satisfies UserAgent.

The search core relies on duck typing through the `UserAgent` protocol;
these tests pin the contract for all implementations at once, so a new
user class cannot silently break the seam.
"""

import io

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.density.profiles import VisualProfile
from repro.geometry.subspace import Subspace
from repro.interaction.base import ProjectionView, UserAgent, UserDecision
from repro.interaction.heuristic import HeuristicUser
from repro.interaction.oracle import OracleUser
from repro.interaction.scripted import (
    AcceptEverythingUser,
    CallbackUser,
    FixedThresholdUser,
    ScriptedUser,
)
from repro.interaction.terminal import TerminalUser


@pytest.fixture
def view_and_dataset(rng):
    center = np.array([0.4, 0.6])
    blob = center + rng.normal(0, 0.02, size=(120, 2))
    noise = rng.uniform(0, 1, size=(200, 2))
    points = np.vstack([blob, noise])
    labels = np.concatenate([np.zeros(120, int), np.ones(200, int)])
    dataset = Dataset(points=points, labels=labels)
    profile = VisualProfile.build(points, center, resolution=30,
                                  bandwidth_scale=0.4)
    view = ProjectionView(
        profile=profile,
        projected_points=points,
        query_2d=center,
        subspace=Subspace.from_axes([0, 1], 2),
        live_indices=np.arange(320),
        major_index=0,
        minor_index=0,
        total_points=320,
    )
    return view, dataset


def all_users(dataset):
    """One instance of every shipped user implementation."""
    tau = 0.5
    return [
        OracleUser(dataset, 0),
        OracleUser(dataset, 0, weight_by_confidence=True),
        HeuristicUser(),
        FixedThresholdUser(tau),
        ScriptedUser([tau] * 10),
        CallbackUser(lambda v: UserDecision.reject(v.n_points)),
        AcceptEverythingUser(),
        TerminalUser(
            input_stream=io.StringIO("skip\n" * 10),
            output_stream=io.StringIO(),
        ),
    ]


class TestProtocolConformance:
    def test_runtime_checkable_protocol(self, view_and_dataset):
        _, dataset = view_and_dataset
        for user in all_users(dataset):
            assert isinstance(user, UserAgent), type(user).__name__

    def test_decisions_are_well_formed(self, view_and_dataset):
        view, dataset = view_and_dataset
        for user in all_users(dataset):
            decision = user.review_view(view)
            assert isinstance(decision, UserDecision), type(user).__name__
            assert decision.selected_mask.shape == (view.n_points,)
            assert decision.selected_mask.dtype == bool
            assert decision.weight > 0
            if not decision.accepted:
                assert decision.selected_count == 0

    def test_rejections_never_select(self, view_and_dataset):
        view, dataset = view_and_dataset
        for user in all_users(dataset):
            decision = user.review_view(view)
            if not decision.accepted:
                assert not decision.selected_mask.any()

    def test_accepted_selection_contains_query_cell_points(
        self, view_and_dataset
    ):
        """Density-separator selections include points near the query."""
        view, dataset = view_and_dataset
        dists = np.linalg.norm(view.projected_points - view.query_2d, axis=1)
        ten_nearest = np.argsort(dists)[:10]
        for user in (OracleUser(dataset, 0), HeuristicUser()):
            decision = user.review_view(view)
            if decision.accepted and decision.threshold is not None:
                # Grid-cell granularity can clip the immediate
                # neighborhood; a sanity floor is enough here.
                selected_near = decision.selected_mask[ten_nearest]
                assert selected_near.mean() >= 0.4, type(user).__name__
