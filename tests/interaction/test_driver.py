"""Tests for the queue-based asyncio driver over the sans-io engine."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.engine import SearchEngine, ViewRequest
from repro.core.search import InteractiveNNSearch
from repro.core.serialization import checkpoint_to_dict, resume_engine
from repro.exceptions import InteractionError
from repro.interaction import AsyncUserDriver
from repro.interaction.oracle import OracleUser

CONFIG = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


@pytest.fixture
def clustered(small_clustered):
    return small_clustered.dataset


def _baseline(ds, qi):
    return InteractiveNNSearch(ds, CONFIG).run(
        ds.points[qi], OracleUser(ds, qi)
    )


def test_serve_matches_blocking_run(clustered):
    qi = int(clustered.cluster_indices(0)[0])
    baseline = _baseline(clustered, qi)
    user = OracleUser(clustered, qi)

    async def scenario():
        driver = AsyncUserDriver(SearchEngine(clustered, CONFIG))

        async def decide(view):
            await asyncio.sleep(0)  # arbitrary user-side latency
            return user.review_view(view)

        return await driver.serve(clustered.points[qi], decide)

    result = asyncio.run(scenario())
    assert np.array_equal(result.neighbor_indices, baseline.neighbor_indices)
    assert np.array_equal(result.probabilities, baseline.probabilities)
    assert result.reason == baseline.reason


def test_manual_request_decision_loop(clustered):
    """The lower-level next_request/submit API, driven explicitly."""
    qi = int(clustered.cluster_indices(1)[0])
    baseline = _baseline(clustered, qi)
    user = OracleUser(clustered, qi)

    async def scenario():
        driver = AsyncUserDriver(SearchEngine(clustered, CONFIG))
        run_task = asyncio.create_task(driver.run(clustered.points[qi]))
        views = 0
        while (request := await driver.next_request()) is not None:
            views += 1
            assert request.view is driver.engine.pending_view
            await driver.submit(user.review_view(request.view))
        result = await run_task
        assert views == result.session.total_views
        return result

    result = asyncio.run(scenario())
    assert np.array_equal(result.neighbor_indices, baseline.neighbor_indices)
    assert np.array_equal(result.probabilities, baseline.probabilities)


def test_run_rejects_concurrent_invocation(clustered):
    qi = int(clustered.cluster_indices(0)[0])

    async def scenario():
        driver = AsyncUserDriver(SearchEngine(clustered, CONFIG))
        first = asyncio.create_task(driver.run(clustered.points[qi]))
        await driver.next_request()  # first run is now live
        with pytest.raises(InteractionError):
            await driver.run(clustered.points[qi])
        first.cancel()
        with pytest.raises(asyncio.CancelledError):
            await first

    asyncio.run(scenario())


def test_serve_from_resumed_checkpoint(clustered):
    """A checkpointed run can be finished asynchronously."""
    qi = int(clustered.cluster_indices(0)[0])
    baseline = _baseline(clustered, qi)
    user = OracleUser(clustered, qi)

    engine = SearchEngine(clustered, CONFIG)
    event = engine.start(clustered.points[qi])
    for _ in range(2):
        event = engine.submit(user.review_view(event.view))
        assert isinstance(event, ViewRequest)
    payload = checkpoint_to_dict(engine)
    engine.close()

    resumed, pending = resume_engine(payload, clustered)

    async def scenario():
        driver = AsyncUserDriver(resumed, initial_event=pending)
        finisher = OracleUser(clustered, qi)

        async def decide(view):
            return finisher.review_view(view)

        return await driver.serve(None, decide)

    result = asyncio.run(scenario())
    assert np.array_equal(result.neighbor_indices, baseline.neighbor_indices)
    assert np.array_equal(result.probabilities, baseline.probabilities)
    assert result.reason == baseline.reason
