"""Integration: tracing covers the whole pipeline and never perturbs it.

The ISSUE's acceptance bar: a traced ``InteractiveNNSearch`` run must
produce spans for every major and minor iteration (plus the projection
search, KDE, and connectivity phases underneath), and running with
tracing disabled must yield byte-identical neighbor output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import InteractiveNNSearch, OracleUser, SearchConfig
from repro.density.cache import disabled_density_cache
from repro.obs import REGISTRY, Tracer, finish_trace


@pytest.fixture(autouse=True)
def _clean_tracer():
    finish_trace()
    yield
    finish_trace()


def _run(small_clustered, *, trace: bool):
    dataset = small_clustered.dataset
    query_index = int(dataset.cluster_indices(0)[0])
    config = SearchConfig(
        support=15, min_major_iterations=2, max_major_iterations=3
    )
    user = OracleUser(dataset, query_index)
    return InteractiveNNSearch(dataset, config).run(
        dataset.points[query_index], user, trace=trace
    )


class TestTracedRun:
    def test_spans_cover_every_iteration(self, small_clustered):
        result = _run(small_clustered, trace=True)
        report = result.trace
        assert report is not None
        session = result.session

        majors = report.find("search.major")
        minors = report.find("search.minor")
        assert len(majors) == len(session.major_records)
        assert len(minors) == len(session.minor_records)

        # Each minor span is tagged with its (major, minor) coordinates
        # and they match the session records one-to-one, in order.
        coords = [(s.attributes["major"], s.attributes["minor"]) for s in minors]
        assert coords == [
            (r.major_index, r.minor_index) for r in session.minor_records
        ]

    def test_pipeline_phases_present_and_nested(self, small_clustered):
        # A warm process-wide density cache short-circuits both the KDE
        # arithmetic and the merge-tree build for repeated grids; this
        # test asserts the *cold* pipeline's span inventory, so run it
        # with caching off.
        with disabled_density_cache():
            report = _run(small_clustered, trace=True).trace
        names = set(report.span_names())
        assert {
            "search.run",
            "search.major",
            "search.minor",
            "projection.find",
            "kde.grid",
            "connectivity.merge_tree.build",
            "user.decision",
        } <= names
        # The search.run span is the single root and contains everything.
        assert [r.name for r in report.roots] == ["search.run"]
        total_spans = sum(1 for _ in report.iter_spans())
        root_spans = sum(1 for _ in report.roots[0].iter_spans())
        assert root_spans == total_spans

    def test_span_attributes_match_session(self, small_clustered):
        result = _run(small_clustered, trace=True)
        majors = result.trace.find("search.major")
        for span_node, record in zip(majors, result.session.major_records):
            assert span_node.attributes["live_before"] == record.live_count_before
            assert span_node.attributes["live_after"] == record.live_count_after

    def test_timing_is_sane(self, small_clustered):
        report = _run(small_clustered, trace=True).trace
        for node in report.iter_spans():
            assert node.end_wall >= node.start_wall
            assert node.self_wall >= -1e-9
        root = report.roots[0]
        assert root.wall >= max(c.wall for c in root.children)


class TestDisabledTracing:
    def test_results_byte_identical(self, small_clustered):
        traced = _run(small_clustered, trace=True)
        plain = _run(small_clustered, trace=False)
        assert plain.trace is None
        assert traced.trace is not None
        assert np.array_equal(plain.neighbor_indices, traced.neighbor_indices)
        assert np.array_equal(plain.probabilities, traced.probabilities)
        assert plain.reason == traced.reason

    def test_no_global_tracer_left_behind(self, small_clustered):
        _run(small_clustered, trace=True)
        assert finish_trace() is None


class TestAmbientTracer:
    def test_run_joins_ambient_trace(self, small_clustered):
        """With an outer tracer active, ``trace=True`` nests instead of
        creating a second tracer, and ``result.trace`` stays ``None``."""
        tracer = Tracer()
        with tracer.activate():
            result = _run(small_clustered, trace=True)
        assert result.trace is None
        report = tracer.report()
        assert "search.run" in report.span_names()
        assert len(report.find("search.major")) == len(
            result.session.major_records
        )


class TestCountersAndSummary:
    def test_counters_advance(self, small_clustered):
        runs = REGISTRY.counter("search.runs")
        majors = REGISTRY.counter("search.major_iterations")
        before = (runs.value, majors.value)
        result = _run(small_clustered, trace=False)
        assert runs.value == before[0] + 1
        assert majors.value == before[1] + len(result.session.major_records)

    def test_result_summary_consistent(self, small_clustered):
        result = _run(small_clustered, trace=False)
        summary = result.summary()
        session = result.session
        assert summary["major_iterations"] == len(session.major_records)
        assert summary["total_views"] == session.total_views
        assert summary["accepted_views"] == session.accepted_views
        assert summary["termination_reason"] == result.reason.value
        assert len(summary["pruning_trajectory"]) == (
            len(session.major_records) + 1
        )
        assert summary["pruning_trajectory"][0] >= summary["pruning_trajectory"][-1]
        assert 0.0 <= summary["acceptance_rate"] <= 1.0
