"""Integration tests: whole-system behaviour on the paper's scenarios.

These are scaled-down versions of the paper's experiments — fast enough
for CI, still exercising the full pipeline: generator -> projection
search -> density profiles -> simulated user -> meaningfulness ->
natural-neighbor detection -> diagnosis.
"""

import numpy as np
import pytest

from repro import (
    HeuristicUser,
    InteractiveNNSearch,
    OracleUser,
    SearchConfig,
    diagnose,
    natural_neighbors,
    retrieval_quality,
)
from repro.data.synthetic import (
    ProjectedClusterSpec,
    generate_projected_clusters,
    uniform_dataset,
)

FAST = SearchConfig(
    support=15,
    grid_resolution=40,
    min_major_iterations=2,
    max_major_iterations=4,
    projection_restarts=3,
)


@pytest.fixture(scope="module")
def clustered():
    spec = ProjectedClusterSpec(
        n_points=1200,
        dim=12,
        n_clusters=4,
        cluster_dim=4,
        axis_parallel=True,
        noise_fraction=0.1,
    )
    return generate_projected_clusters(spec, np.random.default_rng(31))


class TestOracleRetrieval:
    """Mini Table 1: oracle-driven retrieval on projected clusters."""

    def test_precision_and_recall(self, clustered):
        ds = clustered.dataset
        precisions, recalls = [], []
        for label in range(3):
            qi = int(ds.cluster_indices(label)[0])
            user = OracleUser(ds, qi)
            result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], user)
            nn = natural_neighbors(
                result.probabilities,
                iterations=len(result.session.major_records),
            )
            quality = retrieval_quality(nn, ds.cluster_indices(label))
            precisions.append(quality.precision)
            recalls.append(quality.recall)
        assert np.mean(precisions) > 0.8
        assert np.mean(recalls) > 0.7

    def test_natural_count_tracks_cluster_size(self, clustered):
        ds = clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        true_size = ds.cluster_indices(0).size
        user = OracleUser(ds, qi)
        result = InteractiveNNSearch(ds, FAST).run(ds.points[qi], user)
        nn = natural_neighbors(
            result.probabilities, iterations=len(result.session.major_records)
        )
        assert 0.6 * true_size <= nn.size <= 1.4 * true_size

    def test_meaningful_diagnosis(self, clustered):
        ds = clustered.dataset
        qi = int(ds.cluster_indices(1)[0])
        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        assert diagnose(result).meaningful


class TestUniformMeaninglessness:
    """Mini §4.2: uniform data is diagnosed as not meaningful."""

    def test_heuristic_user_rejects_uniform(self):
        ds = uniform_dataset(np.random.default_rng(5), n_points=1000, dim=12)
        query = ds.points[17]
        result = InteractiveNNSearch(ds, FAST).run(query, HeuristicUser())
        verdict = diagnose(result)
        assert not verdict.meaningful
        nn = natural_neighbors(
            result.probabilities, iterations=len(result.session.major_records)
        )
        assert nn.size == 0

    def test_acceptance_rate_contrast(self, clustered):
        """The same heuristic user accepts far more views on clustered data."""
        uniform = uniform_dataset(np.random.default_rng(6), n_points=1000, dim=12)
        u_user = HeuristicUser()
        InteractiveNNSearch(uniform, FAST).run(uniform.points[3], u_user)
        uniform_rate = u_user.views_accepted / max(u_user.views_reviewed, 1)

        ds = clustered.dataset
        qi = int(ds.cluster_indices(2)[0])
        c_user = HeuristicUser()
        InteractiveNNSearch(ds, FAST).run(ds.points[qi], c_user)
        clustered_rate = c_user.views_accepted / max(c_user.views_reviewed, 1)
        assert clustered_rate > uniform_rate


class TestGradedSubspaces:
    """Mini Figs. 10-11: early views are more discriminative than late ones."""

    def test_first_views_have_higher_relief(self, clustered):
        ds = clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        quality = result.session.profile_quality_by_minor_index()
        early = np.mean(quality[0])
        late = np.mean(quality[max(quality)])
        assert early > late

    def test_acceptance_concentrates_early(self, clustered):
        ds = clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        records = result.session.minor_records
        half = len(records) // 2
        early_accepts = sum(1 for r in records[:half] if r.accepted)
        late_accepts = sum(1 for r in records[half:] if r.accepted)
        assert early_accepts >= late_accepts


class TestArbitraryVsAxisParallel:
    """Case-2 style data requires arbitrary projections to do well."""

    def test_arbitrary_mode_on_rotated_clusters(self):
        spec = ProjectedClusterSpec(
            n_points=1000,
            dim=10,
            n_clusters=3,
            cluster_dim=4,
            axis_parallel=False,
            noise_fraction=0.1,
        )
        data = generate_projected_clusters(spec, np.random.default_rng(41))
        ds = data.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        nn = natural_neighbors(
            result.probabilities, iterations=len(result.session.major_records)
        )
        quality = retrieval_quality(nn, ds.cluster_indices(0))
        assert quality.precision > 0.7
        assert quality.recall > 0.5
