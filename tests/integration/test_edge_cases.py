"""Edge cases and failure injection across the whole pipeline."""

import numpy as np
import pytest

from repro import (
    InteractiveNNSearch,
    SearchConfig,
    natural_neighbors,
)
from repro.data.dataset import Dataset
from repro.density.kde import KernelDensityEstimator
from repro.density.profiles import VisualProfile
from repro.exceptions import ReproError
from repro.interaction.base import UserDecision
from repro.interaction.scripted import CallbackUser, FixedThresholdUser

TINY = SearchConfig(
    support=4,
    grid_resolution=12,
    min_major_iterations=1,
    max_major_iterations=2,
    projection_restarts=1,
)


class TestDegenerateData:
    def test_two_dimensional_dataset(self, rng):
        """d = 2: exactly one view per major iteration, no refinement."""
        points = rng.normal(size=(50, 2))
        ds = Dataset(points=points)
        result = InteractiveNNSearch(ds, TINY).run(
            points[0], FixedThresholdUser(0.1)
        )
        assert result.probabilities.shape == (50,)
        for record in result.session.major_records:
            assert len(record.pick_counts) == 1

    def test_three_dimensional_dataset(self, rng):
        """Odd d: one view, one leftover dimension."""
        points = rng.normal(size=(40, 3))
        ds = Dataset(points=points)
        result = InteractiveNNSearch(ds, TINY).run(
            points[0], FixedThresholdUser(0.1)
        )
        assert result.session.total_views >= 1

    def test_nearly_constant_attribute(self, rng):
        """A zero-variance attribute must not break KDE or PCA."""
        points = rng.normal(size=(60, 5))
        points[:, 2] = 7.0  # constant column
        ds = Dataset(points=points)
        result = InteractiveNNSearch(ds, TINY).run(
            points[0], FixedThresholdUser(0.1)
        )
        assert np.all(np.isfinite(result.probabilities))

    def test_duplicated_points(self, rng):
        """Many exact duplicates (common in categorical-ish data)."""
        base = rng.normal(size=(10, 4))
        points = np.repeat(base, 6, axis=0)
        ds = Dataset(points=points)
        result = InteractiveNNSearch(ds, TINY).run(
            points[0], FixedThresholdUser(0.1)
        )
        assert result.probabilities.shape == (60,)

    def test_tiny_dataset(self, rng):
        points = rng.normal(size=(8, 4))
        ds = Dataset(points=points)
        result = InteractiveNNSearch(ds, TINY).run(
            points[0], FixedThresholdUser(0.1)
        )
        assert result.neighbor_indices.size == result.support

    def test_kde_identical_points(self):
        """All-identical points: bandwidth floors keep densities finite."""
        kde = KernelDensityEstimator(np.ones((20, 2)))
        value = kde.evaluate(np.ones(2))
        assert np.isfinite(value)

    def test_profile_query_far_outside(self, rng):
        points = rng.normal(size=(80, 2))
        profile = VisualProfile.build(points, np.array([50.0, 50.0]))
        assert profile.statistics.query_percentile <= 0.05


class TestUserFailureInjection:
    def test_user_exception_propagates(self, small_clustered):
        """A crashing user surfaces its own error, not a masked one."""

        class Boom(RuntimeError):
            pass

        def explode(view):
            raise Boom("ui crashed")

        ds = small_clustered.dataset
        with pytest.raises(Boom):
            InteractiveNNSearch(ds, TINY).run(
                ds.points[0], CallbackUser(explode)
            )

    def test_alternating_user(self, small_clustered):
        """Accept/reject alternation keeps the bookkeeping coherent."""
        state = {"count": 0}

        def alternate(view):
            state["count"] += 1
            if state["count"] % 2:
                return UserDecision.reject(view.n_points)
            mask = np.zeros(view.n_points, dtype=bool)
            mask[: min(20, view.n_points)] = True
            return UserDecision(accepted=True, selected_mask=mask)

        ds = small_clustered.dataset
        result = InteractiveNNSearch(ds, TINY).run(
            ds.points[0], CallbackUser(alternate)
        )
        for major in result.session.major_records:
            accepted = sum(1 for c in major.pick_counts if c > 0)
            assert accepted <= len(major.pick_counts)

    def test_user_selecting_one_point(self, small_clustered):
        def single(view):
            mask = np.zeros(view.n_points, dtype=bool)
            mask[0] = True
            return UserDecision(accepted=True, selected_mask=mask)

        ds = small_clustered.dataset
        result = InteractiveNNSearch(ds, TINY).run(
            ds.points[0], CallbackUser(single)
        )
        assert np.all(np.isfinite(result.probabilities))


class TestNaturalNeighborsEdges:
    def test_all_zero_probabilities(self):
        assert natural_neighbors(np.zeros(100), iterations=3).size == 0

    def test_all_one_probabilities(self):
        # Everything maximally coherent: more than max_fraction -> empty.
        assert natural_neighbors(np.ones(100), iterations=3).size == 0

    def test_exceptions_share_base_class(self):
        from repro.exceptions import (
            ConfigurationError,
            ConvergenceError,
            DimensionalityError,
            EmptyDatasetError,
            InteractionError,
            SubspaceError,
        )

        for exc in (
            ConfigurationError,
            ConvergenceError,
            DimensionalityError,
            EmptyDatasetError,
            InteractionError,
            SubspaceError,
        ):
            assert issubclass(exc, ReproError)
