"""The paper's alternative interaction mode: polygonal separation.

§2.2 offers a second instrument besides the density separator: on a
lateral scatter plot, the user draws separating lines and keeps the
polygonal region containing the query.  These tests drive the full
interactive loop with a user who separates every view that way.
"""

import numpy as np
import pytest

from repro import InteractiveNNSearch, SearchConfig, natural_neighbors
from repro.density.separators import PolygonalSeparator
from repro.interaction.base import UserDecision
from repro.interaction.scripted import CallbackUser

FAST = SearchConfig(
    support=15,
    grid_resolution=30,
    min_major_iterations=2,
    max_major_iterations=2,
    projection_restarts=2,
)


class PolygonalBoxUser:
    """Selects an axis-aligned box of half-width ``radius`` around Q.

    A crude but honest model of a user drawing four separating lines on
    the lateral plot; views whose box captures nearly everything (no
    local structure) are rejected.
    """

    def __init__(self, radius_fraction: float = 0.08) -> None:
        self._radius_fraction = radius_fraction

    def review_view(self, view):
        pts = view.projected_points
        span = pts.max(axis=0) - pts.min(axis=0)
        radius = self._radius_fraction * float(span.max())
        qx, qy = float(view.query_2d[0]), float(view.query_2d[1])
        separator = PolygonalSeparator.from_lines(
            [
                ((1.0, 0.0), qx - radius),   # x >= qx - r
                ((-1.0, 0.0), -(qx + radius)),  # x <= qx + r
                ((0.0, 1.0), qy - radius),
                ((0.0, -1.0), -(qy + radius)),
            ]
        )
        mask = separator.select(view.profile.grid, view.query_2d, pts)
        if mask.mean() > 0.5 or not mask.any():
            return UserDecision.reject(view.n_points, note="box not selective")
        return UserDecision(
            accepted=True, selected_mask=mask, note="polygonal box"
        )


class TestPolygonalWorkflow:
    def test_box_user_recovers_cluster_core(self, small_clustered):
        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        result = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], PolygonalBoxUser()
        )
        nn = natural_neighbors(
            result.probabilities, iterations=len(result.session.major_records)
        )
        if nn.size:
            true = set(ds.cluster_indices(0).tolist())
            hits = sum(1 for i in nn.tolist() if i in true)
            assert hits / nn.size > 0.6
        else:
            # Even when no coherent set emerges, the top ranking should
            # prefer true members.
            top = result.neighbor_indices
            true = set(ds.cluster_indices(0).tolist())
            hits = sum(1 for i in top.tolist() if i in true)
            assert hits / top.size > 0.5

    def test_polygonal_and_density_selections_overlap(self, small_clustered):
        """On a crisp view both instruments select similar cores."""
        from repro.core.projections import find_query_centered_projection
        from repro.density.profiles import VisualProfile
        from repro.density.separators import DensitySeparator
        from repro.geometry.subspace import Subspace

        ds = small_clustered.dataset
        qi = int(ds.cluster_indices(0)[0])
        query = ds.points[qi]
        found = find_query_centered_projection(
            ds.points, query, Subspace.full(ds.dim), 20,
            restarts=3, rng=np.random.default_rng(0),
        )
        pts = found.projection.project(ds.points)
        q2 = found.projection.project(query)
        profile = VisualProfile.build(pts, q2, resolution=40,
                                      bandwidth_scale=0.4)

        density_mask = DensitySeparator(
            profile.statistics.query_density * 0.2
        ).select(profile.grid, q2, pts)

        span = pts.max(axis=0) - pts.min(axis=0)
        radius = 0.08 * float(span.max())
        box = PolygonalSeparator.from_lines(
            [
                ((1.0, 0.0), q2[0] - radius),
                ((-1.0, 0.0), -(q2[0] + radius)),
                ((0.0, 1.0), q2[1] - radius),
                ((0.0, -1.0), -(q2[1] + radius)),
            ]
        )
        box_mask = box.select(profile.grid, q2, pts)
        both = np.logical_and(density_mask, box_mask).sum()
        either = np.logical_or(density_mask, box_mask).sum()
        assert either > 0
        assert both / either > 0.3  # substantially overlapping cores
