"""Cross-cutting scenario tests: realistic end-to-end usage patterns."""

import numpy as np
import pytest

from repro import (
    HeuristicUser,
    InteractiveNNSearch,
    OracleUser,
    SearchConfig,
    natural_neighbors,
    retrieval_quality,
)
from repro.core import run_batch, save_result, load_result_dict
from repro.data.synthetic import (
    ProjectedClusterSpec,
    generate_projected_clusters,
)

FAST = SearchConfig(
    support=15,
    grid_resolution=35,
    min_major_iterations=2,
    max_major_iterations=3,
    projection_restarts=3,
)


@pytest.fixture(scope="module")
def rotated_clusters():
    """Case-2 style: arbitrarily oriented cluster subspaces."""
    spec = ProjectedClusterSpec(
        n_points=1000,
        dim=10,
        n_clusters=3,
        cluster_dim=4,
        axis_parallel=False,
        noise_fraction=0.1,
    )
    return generate_projected_clusters(spec, np.random.default_rng(61))


class TestRotatedClustersWithHeuristic:
    """The label-free user on rotated (Case-2) data — the hardest combo."""

    def test_some_queries_succeed(self, rotated_clusters):
        ds = rotated_clusters.dataset
        successes = 0
        for label in range(3):
            qi = int(ds.cluster_indices(label)[0])
            result = InteractiveNNSearch(ds, FAST).run(
                ds.points[qi], HeuristicUser()
            )
            nn = natural_neighbors(
                result.probabilities,
                iterations=len(result.session.major_records),
            )
            if nn.size:
                quality = retrieval_quality(nn, ds.cluster_indices(label))
                if quality.precision > 0.6:
                    successes += 1
        # The unaided-human model is a lower bound; it should still
        # succeed on at least one of three rotated clusters.
        assert successes >= 1

    def test_axis_parallel_mode_struggles_on_rotated_data(
        self, rotated_clusters
    ):
        """Interpretable views cannot express rotated cluster subspaces
        as crisply — the oracle accepts fewer axis-parallel views."""
        ds = rotated_clusters.dataset
        qi = int(ds.cluster_indices(0)[0])
        arbitrary = InteractiveNNSearch(ds, FAST).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        axis_cfg = SearchConfig(
            support=15,
            grid_resolution=35,
            min_major_iterations=2,
            max_major_iterations=3,
            projection_restarts=3,
            axis_parallel=True,
        )
        axis = InteractiveNNSearch(ds, axis_cfg).run(
            ds.points[qi], OracleUser(ds, qi)
        )
        true = ds.cluster_indices(0)

        def recall(result):
            nn = natural_neighbors(
                result.probabilities,
                iterations=len(result.session.major_records),
            )
            return retrieval_quality(nn, true).recall

        # Arbitrary projections must not lose to axis-parallel here.
        assert recall(arbitrary) >= recall(axis) - 0.05


class TestArchiveRoundTrip:
    def test_batch_then_archive(self, rotated_clusters, tmp_path):
        """A realistic pipeline: batch search, archive each session."""
        ds = rotated_clusters.dataset
        queries = np.array(
            [int(ds.cluster_indices(label)[0]) for label in range(2)]
        )
        search = InteractiveNNSearch(ds, FAST)
        batch = run_batch(search, queries, lambda qi: OracleUser(ds, qi))
        for entry in batch.entries:
            path = save_result(
                entry.result, tmp_path / f"q{entry.query_index}.json"
            )
            loaded = load_result_dict(path)
            assert loaded["session"]["total_views"] == (
                entry.result.session.total_views
            )
        assert batch.meaningful_count >= 1


class TestNormalizationInvariance:
    def test_normalized_data_same_cluster_recovered(self, rotated_clusters):
        """Min-max normalization must not break the recovery."""
        data = rotated_clusters
        ds = data.dataset
        qi = int(ds.cluster_indices(1)[0])
        normalized = ds.normalized()
        result = InteractiveNNSearch(normalized, FAST).run(
            normalized.points[qi], OracleUser(normalized, qi)
        )
        nn = natural_neighbors(
            result.probabilities, iterations=len(result.session.major_records)
        )
        quality = retrieval_quality(nn, ds.cluster_indices(1))
        assert quality.precision > 0.7
