"""Regenerate the committed golden session journal.

``session_journal_golden.jsonl`` is a flight-recorder journal of one
small deterministic demo-style run (the paper's Case-1 workload, seed
7, oracle user).  CI and the test suite replay it on every run
(``python -m repro replay tests/golden/session_journal_golden.jsonl``),
so any behavioral drift in the engine — projection choice, density
digests, RNG consumption, pruning, termination — shows up as a
divergence at an exact sequence number.

Run from the repository root::

    PYTHONPATH=src python tests/golden/make_session_journal.py

Only rerun this script deliberately: committing a regenerated journal
re-baselines the behavioral record.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.config import SearchConfig
from repro.core.engine import SearchEngine
from repro.core.search import drive
from repro.data.synthetic import case1_dataset
from repro.interaction.oracle import OracleUser
from repro.obs.journal import SessionJournal
from repro.obs.replay import replay_journal

OUT = Path(__file__).with_name("session_journal_golden.jsonl")

SEED = 7
N_POINTS = 500
SUPPORT = 12


def main() -> None:
    data = case1_dataset(np.random.default_rng(SEED), n_points=N_POINTS)
    dataset = data.dataset
    query_index = int(dataset.cluster_indices(0)[0])
    journal = SessionJournal.create(
        OUT,
        provenance={"kind": "case1", "seed": SEED, "n_points": N_POINTS},
    )
    engine = SearchEngine(
        dataset, SearchConfig(support=SUPPORT), journal=journal
    )
    result = drive(
        engine, dataset.points[query_index], OracleUser(dataset, query_index)
    )
    journal.close()
    report = replay_journal(OUT)
    assert report.clean, report.describe()
    print(
        f"wrote {OUT} ({report.records} records, "
        f"{result.session.total_views} views, replay clean)"
    )


if __name__ == "__main__":
    main()
