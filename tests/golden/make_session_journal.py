"""Regenerate the committed golden session journals.

``session_journal_golden.jsonl`` is a flight-recorder journal of one
small deterministic demo-style run (the paper's Case-1 workload, seed
7, oracle user).  CI and the test suite replay it on every run
(``python -m repro replay tests/golden/session_journal_golden.jsonl``),
so any behavioral drift in the engine — projection choice, density
digests, RNG consumption, pruning, termination — shows up as a
divergence at an exact sequence number.

``session_journal_binned.jsonl`` and ``session_journal_subsampled.jsonl``
are the same run under ``kde_mode="binned"`` / ``"subsampled"``: each
approximate density mode carries its own committed behavioral record,
so replay is byte-identical *per mode* and a change to an approximate
evaluator cannot hide behind the exact-mode gate.

Run from the repository root::

    PYTHONPATH=src python tests/golden/make_session_journal.py [modes...]

With no arguments only the approximate-mode journals are regenerated —
the exact-mode golden predates the kde_mode knob and re-baselining it
is a deliberate act (pass ``exact`` explicitly).
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.core.config import SearchConfig
from repro.core.engine import SearchEngine
from repro.core.search import drive
from repro.data.synthetic import case1_dataset
from repro.interaction.oracle import OracleUser
from repro.obs.journal import SessionJournal
from repro.obs.replay import replay_journal

HERE = Path(__file__).parent

#: Output journal per kde_mode; the exact journal keeps its legacy name.
OUTPUTS = {
    "exact": HERE / "session_journal_golden.jsonl",
    "binned": HERE / "session_journal_binned.jsonl",
    "subsampled": HERE / "session_journal_subsampled.jsonl",
}

SEED = 7
N_POINTS = 500
SUPPORT = 12
SUBSAMPLE = 200


def generate(mode: str) -> None:
    """Write and verify the golden journal for one kde_mode."""
    out = OUTPUTS[mode]
    data = case1_dataset(np.random.default_rng(SEED), n_points=N_POINTS)
    dataset = data.dataset
    query_index = int(dataset.cluster_indices(0)[0])
    journal = SessionJournal.create(
        out,
        provenance={"kind": "case1", "seed": SEED, "n_points": N_POINTS},
    )
    if mode == "exact":
        config = SearchConfig(support=SUPPORT)
    else:
        # SUBSAMPLE < N_POINTS so the subsampled path genuinely thins
        # the kernel sum instead of degenerating to exact evaluation.
        config = SearchConfig(
            support=SUPPORT, kde_mode=mode, kde_subsample=SUBSAMPLE
        )
    engine = SearchEngine(dataset, config, journal=journal)
    result = drive(
        engine, dataset.points[query_index], OracleUser(dataset, query_index)
    )
    journal.close()
    report = replay_journal(out)
    assert report.clean, report.describe()
    print(
        f"wrote {out.name} ({report.records} records, "
        f"{result.session.total_views} views, replay clean)"
    )


def main() -> None:
    modes = sys.argv[1:] or ["binned", "subsampled"]
    for mode in modes:
        if mode not in OUTPUTS:
            raise SystemExit(f"unknown kde_mode {mode!r}; known: {sorted(OUTPUTS)}")
        generate(mode)


if __name__ == "__main__":
    main()
