"""Golden fixtures captured from the pre-engine blocking loop."""
