"""Regenerate the golden equivalence fixtures for the search engine.

The goldens in ``search_goldens.json`` were captured from the
pre-engine (blocking-loop) implementation of
:class:`~repro.core.search.InteractiveNNSearch` immediately before the
sans-io refactor.  They lock in the acceptance criterion that the
engine-driven ``run()`` produces **byte-identical** results: neighbor
indices, full-precision probabilities, termination reason, and the
session's per-iteration digests.

Run from the repository root::

    PYTHONPATH=src python tests/golden/make_goldens.py

Only rerun this script deliberately — committing regenerated goldens
re-baselines the equivalence proof.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.batch import run_batch
from repro.core.config import SearchConfig
from repro.core.search import InteractiveNNSearch
from repro.data.synthetic import (
    ProjectedClusterSpec,
    generate_projected_clusters,
    uniform_dataset,
)
from repro.interaction.heuristic import HeuristicUser
from repro.interaction.oracle import OracleUser

OUT = Path(__file__).with_name("search_goldens.json")


def clustered_dataset():
    """The conftest ``small_clustered`` dataset, regenerated exactly."""
    spec = ProjectedClusterSpec(
        n_points=600,
        dim=10,
        n_clusters=3,
        cluster_dim=4,
        axis_parallel=True,
        noise_fraction=0.1,
    )
    return generate_projected_clusters(spec, np.random.default_rng(99)).dataset


def uniform():
    return uniform_dataset(np.random.default_rng(7), n_points=400, dim=10)


CASES = {
    "oracle_default": {
        "dataset": "clustered",
        "query": ("cluster", 0, 0),
        "user": "oracle",
        "config": dict(
            support=15,
            grid_resolution=30,
            min_major_iterations=2,
            max_major_iterations=3,
            projection_restarts=2,
        ),
    },
    "axis_parallel": {
        "dataset": "clustered",
        "query": ("cluster", 1, 0),
        "user": "oracle",
        "config": dict(
            support=12,
            axis_parallel=True,
            grid_resolution=30,
            min_major_iterations=2,
            max_major_iterations=3,
            projection_restarts=3,
            rng_seed=5,
        ),
    },
    "paper_exact_heuristic": {
        "dataset": "uniform",
        "query": ("index", 0),
        "user": "heuristic",
        "config": dict(
            _paper_exact=True,
            support=12,
            grid_resolution=30,
            min_major_iterations=2,
            max_major_iterations=3,
        ),
    },
    "weighted_no_prune": {
        "dataset": "clustered",
        "query": ("cluster", 2, 1),
        "user": "oracle_weighted",
        "config": dict(
            support=15,
            grid_resolution=30,
            min_major_iterations=2,
            max_major_iterations=2,
            projection_restarts=2,
            remove_unpicked=False,
            use_live_population=False,
            projection_weight=1.25,
        ),
    },
}


def build_case(name: str, case: dict) -> dict:
    ds = clustered_dataset() if case["dataset"] == "clustered" else uniform()
    q = case["query"]
    if q[0] == "cluster":
        query_index = int(ds.cluster_indices(q[1])[q[2]])
    else:
        query_index = int(q[1])
    params = dict(case["config"])
    if params.pop("_paper_exact", False):
        config = SearchConfig.paper_exact(**params)
    else:
        config = SearchConfig(**params)
    if case["user"] == "oracle":
        user = OracleUser(ds, query_index)
    elif case["user"] == "oracle_weighted":
        user = OracleUser(ds, query_index, weight_by_confidence=True)
    else:
        user = HeuristicUser()
    result = InteractiveNNSearch(ds, config).run(ds.points[query_index], user)
    session = result.session
    return {
        "query_index": query_index,
        "neighbor_indices": result.neighbor_indices.tolist(),
        "probabilities": result.probabilities.tolist(),
        "support": result.support,
        "reason": result.reason.value,
        "probability_history": [
            p.tolist() for p in session.probability_history
        ],
        "minor_records": [
            {
                "major": r.major_index,
                "minor": r.minor_index,
                "accepted": r.accepted,
                "threshold": r.threshold,
                "selected_count": r.selected_count,
                "live_count": r.live_count,
                "refinement_dims": list(r.refinement_dims),
                "selected_indices": r.selected_indices.tolist(),
                "basis": r.subspace.basis.tolist(),
            }
            for r in session.minor_records
        ],
        "major_records": [
            {
                "index": r.index,
                "live_before": r.live_count_before,
                "live_after": r.live_count_after,
                "pick_counts": list(r.pick_counts),
                "expected": r.expected,
                "variance": r.variance,
                "accepted_views": r.accepted_views,
                "overlap": r.overlap,
            }
            for r in session.major_records
        ],
    }


def build_batch_golden() -> dict:
    ds = clustered_dataset()
    config = SearchConfig(
        support=15,
        grid_resolution=30,
        min_major_iterations=2,
        max_major_iterations=2,
        projection_restarts=2,
    )
    queries = np.concatenate(
        [ds.cluster_indices(0)[:2], ds.cluster_indices(1)[:1]]
    )
    batch = run_batch(
        InteractiveNNSearch(ds, config),
        queries,
        lambda qi: OracleUser(ds, qi),
    )
    return {
        "query_indices": queries.tolist(),
        "entries": [
            {
                "query_index": e.query_index,
                "neighbors": e.neighbors.tolist(),
                "neighbor_indices": e.result.neighbor_indices.tolist(),
                "probabilities": e.result.probabilities.tolist(),
                "reason": e.result.reason.value,
                "meaningful": bool(e.diagnosis.meaningful),
            }
            for e in batch.entries
        ],
    }


def main() -> None:
    payload = {
        "_comment": (
            "Golden outputs captured from the pre-engine blocking-loop "
            "InteractiveNNSearch. Regenerate only deliberately with "
            "tests/golden/make_goldens.py."
        ),
        "cases": {name: build_case(name, case) for name, case in CASES.items()},
        "batch": build_batch_golden(),
    }
    OUT.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
