"""Explaining WHY points are neighbors: attribute importance.

Beyond returning meaningful neighbors, the interactive session leaves
an audit trail of everything the user saw and selected.  This example
mines that trail to answer a question classical kNN cannot: *which
attributes make these points similar to the query?*

We run a session on a 20-attribute data set whose query cluster is
confined to 6 known attributes, then recover those attributes from the
session alone, archive the full session as JSON, and print the audit
summary.

Run:
    python examples/explaining_neighborhoods.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    InteractiveNNSearch,
    OracleUser,
    SearchConfig,
    case1_dataset,
    natural_neighbors,
)
from repro.analysis import neighborhood_attribute_importance
from repro.core import save_result

ATTRIBUTE_NAMES = [f"attr_{i:02d}" for i in range(20)]


def main() -> None:
    data = case1_dataset(np.random.default_rng(7), n_points=3000)
    dataset = data.dataset

    query_index = int(dataset.cluster_indices(0)[0])
    truth = data.clusters[0]
    true_axes = sorted(
        int(np.flatnonzero(np.abs(row) > 1e-9)[0]) for row in truth.basis
    )
    print(f"ground truth: the query's cluster lives in attributes {true_axes}")

    config = SearchConfig(support=25, axis_parallel=True)
    user = OracleUser(dataset, query_index)
    result = InteractiveNNSearch(dataset, config).run(
        dataset.points[query_index], user
    )
    print(f"\nsession: {result.session.accepted_views}/"
          f"{result.session.total_views} views accepted")

    # Explain the final natural-neighbor set: along which attributes is
    # it tighter than the data at large?
    neighbors = natural_neighbors(
        result.probabilities, iterations=len(result.session.major_records)
    )
    print(f"natural neighbors: {neighbors.size}")
    importance = neighborhood_attribute_importance(dataset.points, neighbors)
    print("\nrecovered attribute importance (top 8):")
    for axis, weight in importance.top_attributes(8):
        marker = " <-- true signal attribute" if axis in true_axes else ""
        print(f"  {ATTRIBUTE_NAMES[axis]}: {weight:.3f}{marker}")

    recovered = {a for a, _ in importance.top_attributes(len(true_axes))}
    overlap = len(recovered & set(true_axes))
    print(f"\n{overlap}/{len(true_axes)} true signal attributes recovered "
          f"in the top {len(true_axes)}")

    # Archive the whole session for offline analysis.
    path = save_result(result, "benchmarks/results/explained_session.json")
    print(f"full session audit trail archived to {path}")


if __name__ == "__main__":
    main()
