"""Nearest-neighbor classification with human feedback (paper §4.3).

Reproduces the Table 2 experiment end to end on the ionosphere-like
stand-in: classify query points by majority vote over (a) the full-
dimensional L2 neighbors and (b) the neighbors found interactively,
using as many neighbors as the natural query-cluster size.

Run:
    python examples/classification_with_feedback.py
"""

from __future__ import annotations

from repro import OracleUser, SearchConfig
from repro.analysis import compare_classification
from repro.data import ionosphere_workload


def main() -> None:
    workload = ionosphere_workload(17, n_queries=10)
    dataset = workload.dataset
    print(f"data: {dataset.name} — {dataset.size} points, {dataset.dim} attrs, "
          f"classes {dataset.cluster_sizes()}")
    print("(synthetic stand-in for UCI ionosphere; no network access)")

    # The oracle targets the query's sub-cluster: the visual unit a
    # human perceives on the density profiles.
    fine = dataset.metadata["fine_labels"]

    comparison = compare_classification(
        dataset,
        workload.query_indices,
        lambda ds, qi: OracleUser(ds, qi, relevant_mask=(fine == fine[qi])),
        config=SearchConfig(support=20, max_major_iterations=4),
    )

    print(f"\n{'query':>6} {'true':>5} {'L2':>4} {'interactive':>12} {'k':>5}")
    for base, inter in zip(comparison.baseline, comparison.interactive):
        flag = "" if not inter.used_fallback else " (fallback)"
        print(
            f"{base.query_index:>6} {base.true_label:>5} "
            f"{base.predicted_label:>4} {inter.predicted_label:>12} "
            f"{inter.neighbors_used:>5}{flag}"
        )

    print(f"\naccuracy: L2 = {comparison.baseline_accuracy:.0%}, "
          f"interactive = {comparison.interactive_accuracy:.0%}")
    print("paper (real ionosphere): L2 = 71%, interactive = 86%")


if __name__ == "__main__":
    main()
