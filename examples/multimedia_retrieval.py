"""Similarity retrieval on a simulated multimedia feature workload.

The paper's introduction motivates interactive NN search with
multimedia similarity retrieval: feature vectors are high dimensional,
perceptually similar items cluster in *different* feature subspaces for
different media types, and a user judges relevance visually.

This example simulates an image-descriptor workload: 64-dimensional
feature vectors (color histogram + texture + shape blocks) where each
"visual theme" expresses itself in its own block of features.  Given a
query image, the system retrieves the perceptually related set, and we
compare against the full-dimensional ranking the classical engines use.

Run:
    python examples/multimedia_retrieval.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FullDimensionalKNN,
    InteractiveNNSearch,
    OracleUser,
    SearchConfig,
    natural_neighbors,
    retrieval_quality,
)
from repro.data.synthetic import ProjectedClusterSpec, generate_projected_clusters


def make_image_features():
    """5000 simulated 64-d image descriptors with 8 visual themes.

    Each theme (e.g. 'sunsets', 'faces') concentrates in its own 10-d
    feature block — color features for one theme, texture for another —
    while the remaining features vary freely, exactly the regime in
    which full-dimensional similarity degrades.
    """
    spec = ProjectedClusterSpec(
        n_points=5000,
        dim=64,
        n_clusters=8,
        cluster_dim=8,
        axis_parallel=True,
        disjoint_axes=True,
        noise_fraction=0.2,
        cluster_spread=0.02,
    )
    return generate_projected_clusters(spec, np.random.default_rng(2024))


def main() -> None:
    data = make_image_features()
    dataset = data.dataset
    print(f"simulated image library: {dataset.size} descriptors, "
          f"{dataset.dim} features, 8 visual themes")

    query_index = int(dataset.cluster_indices(3)[0])
    query = dataset.points[query_index]
    theme = dataset.label_of(query_index)
    relevant = dataset.cluster_indices(theme)
    print(f"query image belongs to theme {theme} "
          f"({relevant.size} relevant images)")

    # Classical engine: full-dimensional L2 ranking at k = |relevant|.
    knn = FullDimensionalKNN(dataset)
    ranked = knn.query(query, int(relevant.size), exclude_index=query_index)
    classical = retrieval_quality(ranked.neighbor_indices, relevant)
    print(f"\nclassical full-dim retrieval: precision "
          f"{classical.precision:.1%}, recall {classical.recall:.1%}")

    # Interactive retrieval with relevance feedback.
    user = OracleUser(dataset, query_index)
    config = SearchConfig(support=30, max_major_iterations=4)
    result = InteractiveNNSearch(dataset, config).run(query, user)
    found = natural_neighbors(
        result.probabilities, iterations=len(result.session.major_records)
    )
    interactive = retrieval_quality(found, relevant)
    print(f"interactive retrieval:        precision "
          f"{interactive.precision:.1%}, recall {interactive.recall:.1%} "
          f"({found.size} images returned)")

    print(f"\nviews shown to the user: {result.session.total_views}, "
          f"accepted: {result.session.accepted_views}")
    improvement = interactive.f1 - classical.f1
    print(f"F1 improvement from interaction: {improvement:+.1%}")


if __name__ == "__main__":
    main()
