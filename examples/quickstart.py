"""Quickstart: interactive nearest-neighbor search in five minutes.

Generates a high-dimensional data set with hidden projected clusters,
runs the interactive search with a simulated user, and prints the
meaningful neighbors along with the system's self-diagnosis.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    InteractiveNNSearch,
    OracleUser,
    SearchConfig,
    case1_dataset,
    diagnose,
    natural_neighbors,
    retrieval_quality,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A 20-dimensional data set whose clusters only exist in hidden
    #    6-dimensional subspaces — full-dimensional distances are nearly
    #    meaningless here (the paper's motivating setting).
    data = case1_dataset(rng, n_points=3000)
    dataset = data.dataset
    print(f"data: {dataset.size} points, {dataset.dim} dims, "
          f"clusters {dataset.cluster_sizes()}")

    # 2. Pick a query point inside one of the hidden clusters.
    query_index = int(dataset.cluster_indices(0)[0])
    query = dataset.points[query_index]

    # 3. The user.  OracleUser simulates the paper's human with full
    #    knowledge of the embedded clusters; swap in HeuristicUser for a
    #    label-free simulated human, or TerminalUser to drive the
    #    session yourself.
    user = OracleUser(dataset, query_index)

    # 4. Run the interactive loop: graded orthogonal projections,
    #    density-separator feedback, meaningfulness quantification.
    search = InteractiveNNSearch(dataset, SearchConfig(support=25))
    result = search.run(query, user)

    print(f"\nsearch finished: {result.reason.value}")
    print(f"views shown {result.session.total_views}, "
          f"accepted {result.session.accepted_views}")

    # 5. The meaningful neighbors: the natural cluster found by the
    #    meaningfulness thresholding (§4.1's steep-drop analysis).
    neighbors = natural_neighbors(
        result.probabilities, iterations=len(result.session.major_records)
    )
    truth = dataset.cluster_indices(dataset.label_of(query_index))
    quality = retrieval_quality(neighbors, truth)
    print(f"\nnatural neighbors found: {neighbors.size} "
          f"(true cluster size {truth.size})")
    print(f"precision {quality.precision:.1%}, recall {quality.recall:.1%}")
    print("first ten neighbor indices:", neighbors[:10].tolist())

    # 6. The self-diagnosis: was NN search meaningful for this query?
    verdict = diagnose(result)
    print(f"\nmeaningful? {verdict.meaningful} — {verdict.explanation}")


if __name__ == "__main__":
    main()
