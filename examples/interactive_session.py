"""Drive the interactive search yourself, in the terminal.

You are the human in the loop: each minor iteration shows an ASCII
density profile of a carefully chosen projection; you place the density
separator by typing a threshold, preview the resulting query cluster,
and either confirm (``ok``) or skip the view (``skip``).

The data has one crisp hidden cluster around the query — try to isolate
it.  After the session the script reveals the ground truth and scores
your selections.

Run (requires a TTY):
    python examples/interactive_session.py

Non-interactive demo (scripted input):
    python examples/interactive_session.py --demo
"""

from __future__ import annotations

import io
import sys

import numpy as np

from repro import (
    InteractiveNNSearch,
    SearchConfig,
    TerminalUser,
    natural_neighbors,
    retrieval_quality,
)
from repro.data.synthetic import ProjectedClusterSpec, generate_projected_clusters


def make_data():
    spec = ProjectedClusterSpec(
        n_points=800,
        dim=8,
        n_clusters=2,
        cluster_dim=3,
        axis_parallel=True,
        noise_fraction=0.15,
    )
    return generate_projected_clusters(spec, np.random.default_rng(77))


def main() -> None:
    data = make_data()
    dataset = data.dataset
    query_index = int(dataset.cluster_indices(0)[0])
    query = dataset.points[query_index]

    demo = "--demo" in sys.argv
    if demo:
        # A canned session: try a descending ladder of separator heights
        # in each view, confirm once a selection exists, then move on.
        per_view = "2.0\n1.2\n0.8\n0.55\n0.4\nok\n"
        script = per_view * 16 + "skip\n" * 40
        user = TerminalUser(input_stream=io.StringIO(script))
        print("(demo mode: scripted descending separator ladder per view)")
    else:
        user = TerminalUser()
        print(
            "You will see density profiles of 2-D projections. The data\n"
            "has one hidden cluster around the query point Q. Type a\n"
            "density threshold to preview a separator, 'ok' to confirm,\n"
            "'skip' to reject a view."
        )

    config = SearchConfig(
        support=15,
        grid_resolution=40,
        min_major_iterations=2,
        max_major_iterations=2,
        projection_restarts=3,
    )
    result = InteractiveNNSearch(dataset, config).run(query, user)

    neighbors = natural_neighbors(
        result.probabilities, iterations=len(result.session.major_records)
    )
    truth = dataset.cluster_indices(dataset.label_of(query_index))
    print(f"\nSession over. You accepted "
          f"{result.session.accepted_views}/{result.session.total_views} views.")
    if neighbors.size:
        quality = retrieval_quality(neighbors, truth)
        print(f"Natural cluster found: {neighbors.size} points "
              f"(truth: {truth.size}).")
        print(f"Your precision {quality.precision:.0%}, recall "
              f"{quality.recall:.0%} against the hidden cluster.")
    else:
        print("No coherent cluster emerged from your selections "
              f"(the hidden cluster has {truth.size} points).")


if __name__ == "__main__":
    main()
