"""Diagnosing when nearest-neighbor search is NOT meaningful.

The headline secondary capability of the paper's system (§4.2): when
high-dimensional data is noise in every projection, the system should
say so instead of returning arbitrary "nearest" neighbors.

This example runs the identical pipeline on two data sets —

  * uniform noise in 20 dimensions (the pathological case), and
  * the same size of data with hidden projected clusters —

using the same label-free HeuristicUser, and contrasts everything the
system reports: distance-contrast statistics, view acceptance, sorted
meaningfulness probabilities, and the final verdict.

Run:
    python examples/diagnosing_meaningless_data.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    HeuristicUser,
    InteractiveNNSearch,
    SearchConfig,
    case1_dataset,
    contrast_report,
    diagnose,
    uniform_dataset,
)
from repro.viz.ascii import render_sorted_series


def run_and_report(name: str, dataset, query_index: int) -> None:
    print(f"\n======== {name} ========")
    query = dataset.points[query_index]

    # Beyer-style distance contrast: in both cases the full-dimensional
    # distances show little contrast — this alone cannot distinguish
    # recoverable structure from true noise.
    contrast = contrast_report(dataset.points, query)
    print(f"full-dim relative contrast: {contrast.relative_contrast:.2f} "
          f"(CV {contrast.coefficient_of_variation:.2f})")

    user = HeuristicUser()
    search = InteractiveNNSearch(dataset, SearchConfig(support=25))
    result = search.run(query, user)

    accepted = result.session.accepted_views
    total = result.session.total_views
    print(f"user accepted {accepted}/{total} views")
    print(render_sorted_series(
        np.sort(result.probabilities)[::-1][:1500],
        label="sorted meaningfulness P(j)",
        height=8,
    ))

    verdict = diagnose(result)
    print(f"VERDICT: meaningful = {verdict.meaningful}")
    print(f"  {verdict.explanation}")


def main() -> None:
    rng = np.random.default_rng(13)

    noise = uniform_dataset(rng, n_points=5000, dim=20)
    run_and_report("uniform noise (no structure anywhere)", noise, 42)

    clustered = case1_dataset(np.random.default_rng(7), n_points=5000)
    ds = clustered.dataset
    # Query from the core of a hidden cluster (the label-free heuristic
    # user models an unaided human and does best on central queries;
    # see the oracle-vs-heuristic ablation for the full picture).
    truth = clustered.clusters[0]
    members = ds.cluster_indices(0)
    in_subspace = (ds.points[members] - truth.anchor) @ truth.basis.T
    query_index = int(members[np.argmin(np.linalg.norm(in_subspace, axis=1))])
    run_and_report(
        "projected clusters (structure hidden in subspaces)", ds, query_index
    )

    print(
        "\nBoth data sets look equally hopeless to full-dimensional "
        "distances; only the interactive process tells them apart."
    )


if __name__ == "__main__":
    main()
