"""Rescuing a fringe query with relevance-feedback refinement.

A hard case for any neighbor search: the query sits at the *edge* of
its natural cluster.  The first interactive session recovers only part
of the cluster; the refinement loop then moves the query toward the
probability-weighted centroid of what it found (Rocchio-style query
movement, motivated by the paper's MARS/FALCON references) and runs
again from a better vantage point.

The example also demonstrates the view-structure report: what else the
user saw in the most discriminative projection.

Run:
    python examples/fringe_query_refinement.py
"""

from __future__ import annotations

import numpy as np

from repro import InteractiveNNSearch, OracleUser, SearchConfig
from repro.analysis import retrieval_quality, view_structure
from repro.core import refine_search
from repro.core.projections import find_query_centered_projection
from repro.data.synthetic import ProjectedClusterSpec, generate_projected_clusters
from repro.density.profiles import VisualProfile
from repro.geometry.subspace import Subspace


def main() -> None:
    spec = ProjectedClusterSpec(
        n_points=2500,
        dim=16,
        n_clusters=4,
        cluster_dim=5,
        axis_parallel=True,
        noise_fraction=0.15,
        cluster_spread=0.025,
    )
    data = generate_projected_clusters(spec, np.random.default_rng(55))
    dataset = data.dataset

    # The fringe member: the cluster point farthest from its anchor
    # within the cluster's own subspace.
    truth = data.clusters[0]
    members = dataset.cluster_indices(0)
    in_subspace = (dataset.points[members] - truth.anchor) @ truth.basis.T
    fringe = int(members[np.argmax(np.linalg.norm(in_subspace, axis=1))])
    print(f"query: point {fringe}, at the fringe of a "
          f"{members.size}-point hidden cluster")

    relevant_mask = dataset.labels == 0
    search = InteractiveNNSearch(dataset, SearchConfig(support=25))
    refined = refine_search(
        search,
        dataset.points[fringe],
        lambda query: OracleUser(dataset, fringe, relevant_mask=relevant_mask),
        max_rounds=3,
    )

    print(f"\nrefinement ran {len(refined.steps)} round(s), "
          f"converged={refined.converged}")
    for round_no, step in enumerate(refined.steps):
        quality = retrieval_quality(step.neighbors, members)
        marker = "  <-- best (by plateau quality)" if step is refined.best else ""
        print(f"  round {round_no}: {step.neighbor_count} neighbors, "
              f"precision {quality.precision:.1%}, recall {quality.recall:.1%}, "
              f"plateau {step.plateau_quality:.2f}{marker}")

    # What did the best view look like structurally?
    final_query = refined.best.query
    found = find_query_centered_projection(
        dataset.points, final_query, Subspace.full(dataset.dim), 25,
        restarts=4, rng=np.random.default_rng(0),
    )
    projected = found.projection.project(dataset.points)
    q2 = found.projection.project(final_query)
    profile = VisualProfile.build(projected, q2, resolution=50,
                                  bandwidth_scale=0.4)
    tau = profile.statistics.query_density * 0.2
    structure = view_structure(profile.grid, projected, q2, tau)
    print(f"\nbest view at separator tau={tau:.3g}: "
          f"{structure.region_count} distinct density regions")
    for rank, region in enumerate(structure.regions[:4]):
        marker = "  <-- query's region" if region.contains_query else ""
        print(f"  region #{rank}: {region.point_count} points, "
              f"peak density {region.peak_density:.2f}{marker}")


if __name__ == "__main__":
    main()
